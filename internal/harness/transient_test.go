package harness

import (
	"strings"
	"testing"
	"time"

	"depfast/internal/failslow"
	"depfast/internal/ycsb"
)

func TestRunTransientDepFastFlat(t *testing.T) {
	cfg := shortCfg(DepFastRaft)
	cfg.Fault = failslow.NetSlow
	res, err := RunTransient(cfg, 2400*time.Millisecond, 400*time.Millisecond,
		800*time.Millisecond, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 6 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	// Fault flags cover exactly the middle windows.
	wantFault := []bool{false, false, true, true, false, false}
	for i, w := range res.Windows {
		if w.FaultOn != wantFault[i] {
			t.Errorf("window %d fault = %v", i, w.FaultOn)
		}
	}
	before, during, after := res.PhaseThroughputs()
	if before <= 0 || during <= 0 || after <= 0 {
		t.Fatalf("phases = %v %v %v", before, during, after)
	}
	// DepFastRaft: the transient fault must not crater throughput.
	if during < before*0.6 {
		t.Errorf("throughput cratered during transient fault: %0.f -> %0.f", before, during)
	}
	out := res.Render()
	if !strings.Contains(out, "transient") || !strings.Contains(out, "*") {
		t.Errorf("render: %s", out)
	}
	t.Logf("\n%s", out)
}

func TestRunTransientValidation(t *testing.T) {
	cfg := shortCfg(DepFastRaft)
	if _, err := RunTransient(cfg, 100*time.Millisecond, time.Second, 0, 0); err == nil {
		t.Fatal("window longer than total must error")
	}
}

func TestSweep(t *testing.T) {
	cfg := shortCfg(DepFastRaft)
	cfg.Duration = 500 * time.Millisecond
	counts := []int{4, 16}
	results, err := Sweep(cfg, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// More clients => at least as much throughput (closed loop, below
	// saturation) within generous noise.
	if results[1].Throughput < results[0].Throughput*0.8 {
		t.Errorf("sweep not monotone-ish: %v", results)
	}
	out := RenderSweep(results, counts)
	if !strings.Contains(out, "clients") {
		t.Errorf("render: %s", out)
	}
	t.Logf("\n%s", out)
}

func TestRunWithScanHeavyWorkload(t *testing.T) {
	// Workload E (scan-heavy) pushes the OpScan path through the full
	// replicated stack.
	wl, err := ycsb.Preset("e")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(DepFastRaft)
	cfg.Workload = &wl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 30 {
		t.Fatalf("scan workload ops = %d", res.Ops)
	}
	if res.Errors > res.Ops/10 {
		t.Fatalf("scan workload errors = %d of %d", res.Errors, res.Ops)
	}
	t.Logf("%s", res)
}

func TestRunWithMixedWorkloadString(t *testing.T) {
	wl, err := ycsb.Parse("recordcount=300,readproportion=0.6,updateproportion=0.3,insertproportion=0.1,requestdistribution=latest")
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(DepFastRaft)
	cfg.Workload = &wl
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 30 {
		t.Fatalf("mixed workload ops = %d", res.Ops)
	}
	t.Logf("%s", res)
}
