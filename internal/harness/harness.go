// Package harness runs the paper's experiments end to end: it brings
// up an RSM deployment (DepFastRaft or one of the baseline
// anti-pattern RSMs) on the in-memory network, drives a YCSB-style
// closed-loop client population, injects a fail-slow fault into a
// minority of followers, and measures throughput, average latency,
// and P99 — the three panels of Figures 1 and 3.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"depfast/internal/baseline"
	"depfast/internal/clock"
	"depfast/internal/core"
	"depfast/internal/env"
	"depfast/internal/failslow"
	"depfast/internal/kv"
	"depfast/internal/metrics"
	"depfast/internal/obs"
	"depfast/internal/raft"
	"depfast/internal/rpc"
	"depfast/internal/trace"
	"depfast/internal/transport"
	"depfast/internal/xtrace"
	"depfast/internal/ycsb"
)

// System selects the RSM implementation under test.
type System int

const (
	// DepFastRaft is the paper's system (Figure 3).
	DepFastRaft System = iota
	// SyncRSM, BufferRSM, CallbackRSM are the Figure 1 baselines.
	SyncRSM
	BufferRSM
	CallbackRSM
)

// String names the system as in experiment output.
func (s System) String() string {
	switch s {
	case DepFastRaft:
		return "DepFastRaft"
	case SyncRSM:
		return "SyncRSM"
	case BufferRSM:
		return "BufferRSM"
	case CallbackRSM:
		return "CallbackRSM"
	}
	return "unknown"
}

// Baselines lists the Figure 1 comparators.
var Baselines = []System{SyncRSM, BufferRSM, CallbackRSM}

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	System System
	Nodes  int

	// Clients is the closed-loop client population, spread over
	// ClientRuntimes runtimes.
	Clients        int
	ClientRuntimes int

	Warmup   time.Duration
	Duration time.Duration

	// Workload parameters (the paper's YCSB write workload). Workload,
	// when non-nil, overrides the default 100%-update mix entirely
	// (e.g. from ycsb.Parse or ycsb.Preset).
	Records   int
	ValueSize int
	Workload  *ycsb.Workload

	// Fault injection: Fault applied to FaultFollowers followers.
	Fault          failslow.Fault
	FaultFollowers int
	Intensity      failslow.Intensity

	// Traced attaches a collector to every runtime.
	Traced bool

	// XTracer, when set, is the causal per-request trace collector:
	// the raft servers record their commit trees into it, every client
	// roots a context per request, and the sampler periodically folds
	// its critical-path attribution into the recorder.
	XTracer *xtrace.Collector

	// Recorder, when set, is the flight recorder the whole deployment
	// publishes into: every raft server's events, fault injections, the
	// harness's gauge samples, and (when Traced) periodic SPG
	// snapshots.
	Recorder *obs.Recorder

	// Optional config hooks.
	RaftMutate     func(*raft.Config)
	BaselineMutate func(*baseline.Config)

	Seed int64
}

// DefaultRunConfig returns the scaled-down paper workload: a
// three-node deployment under a pure-update zipfian workload.
func DefaultRunConfig(system System) RunConfig {
	return RunConfig{
		System:         system,
		Nodes:          3,
		Clients:        48,
		ClientRuntimes: 4,
		Warmup:         500 * time.Millisecond,
		Duration:       2 * time.Second,
		Records:        2000,
		ValueSize:      100,
		Fault:          failslow.None,
		FaultFollowers: 1,
		Intensity:      failslow.DefaultIntensity(),
		Seed:           42,
	}
}

// RunResult is one run's measurement.
type RunResult struct {
	System   System
	Nodes    int
	Fault    failslow.Fault
	Ops      int64
	Errors   int64
	Duration time.Duration

	Throughput float64 // ops/sec
	Mean       time.Duration
	P50        time.Duration
	P99        time.Duration

	LeaderCrashed bool
	// Disturbed marks a run whose measurement window saw leadership
	// churn (an election fired mid-run): the numbers measure the churn,
	// not the configuration, so figure drivers re-run such cells.
	Disturbed bool
	Collector *trace.Collector // non-nil when Traced
}

// String renders a one-line summary.
func (r RunResult) String() string {
	crash := ""
	if r.LeaderCrashed {
		crash = " [LEADER CRASHED]"
	}
	return fmt.Sprintf("%-12s n=%d %-18s tput=%8.0f op/s  mean=%8v  p99=%8v  errs=%d%s",
		r.System, r.Nodes, r.Fault, r.Throughput,
		r.Mean.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond), r.Errors, crash)
}

// cluster abstracts the two server families behind one lifecycle.
type clusterHandle struct {
	names     []string
	net       *transport.Network
	envs      map[string]*env.Env
	stop      func()
	leader    func() (string, bool) // name, established
	crashed   func() bool
	elections func() int64
	// raftServers is populated for DepFastRaft clusters so experiments
	// can read per-server mitigation/quarantine state; nil for
	// baseline systems.
	raftServers map[string]*raft.Server
}

// waitLeader polls until the cluster has an established leader.
func (h *clusterHandle) waitLeader(timeout time.Duration) (string, error) {
	var name string
	ok := clock.WaitUntil(timeout, 5*time.Millisecond, func() bool {
		var elected bool
		name, elected = h.leader()
		return elected
	})
	if !ok {
		return "", fmt.Errorf("harness: no leader within %v", timeout)
	}
	return name, nil
}

// clientPool is a running YCSB closed-loop client population against
// a cluster. Callers flip measurement windows on and off (or use
// measureFor) and read the counters; stop() winds the population down.
type clientPool struct {
	rts  []*core.Runtime
	eps  []*rpc.Endpoint
	hist *metrics.Histogram

	ops       atomic.Int64
	errs      atomic.Int64
	measuring atomic.Bool
	stopFlag  atomic.Bool
	wg        sync.WaitGroup

	// Flight-recorder inputs, live outside measurement windows so the
	// gauge sampler sees the whole run: tput counts every completed op;
	// obsHist (set only when a recorder is attached) holds the current
	// sampling interval's latencies and is swapped out by the sampler.
	tput    *metrics.Throughput
	obsHist atomic.Pointer[metrics.Histogram]
}

// startClients launches cfg.Clients closed-loop clients over
// cfg.ClientRuntimes runtimes, targeting leader first.
func startClients(h *clusterHandle, cfg RunConfig, leader string, collector *trace.Collector) *clientPool {
	p := &clientPool{
		rts:  make([]*core.Runtime, cfg.ClientRuntimes),
		eps:  make([]*rpc.Endpoint, cfg.ClientRuntimes),
		hist: metrics.NewHistogram(),
		tput: metrics.NewThroughput(),
	}
	if cfg.Recorder != nil {
		p.obsHist.Store(metrics.NewHistogram())
	}
	ecfg := env.DefaultConfig()
	for i := range p.rts {
		name := fmt.Sprintf("client-%d", i)
		var opts []core.Option
		if collector != nil {
			opts = append(opts, core.WithTracer(collector))
		}
		p.rts[i] = core.NewRuntime(name, opts...)
		p.eps[i] = rpc.NewEndpoint(name, p.rts[i], h.net, rpc.WithCallTimeout(3*time.Second))
		h.net.Register(name, env.New(name, ecfg), p.eps[i].TransportHandler())
	}

	// Put the discovered leader first so clients start on target.
	order := append([]string{leader}, otherNames(h.names, leader)...)
	workload := ycsb.PaperWrite(cfg.Records, cfg.ValueSize)
	if cfg.Workload != nil {
		workload = *cfg.Workload
	}
	for ci := 0; ci < cfg.Clients; ci++ {
		rt := p.rts[ci%cfg.ClientRuntimes]
		ep := p.eps[ci%cfg.ClientRuntimes]
		id := uint64(1000 + ci)
		gen := ycsb.NewGenerator(workload, cfg.Seed+int64(ci))
		p.wg.Add(1)
		rt.Spawn("ycsb-client", func(co *core.Coroutine) {
			defer p.wg.Done()
			cl := raft.NewClient(id, ep, order, 3*time.Second)
			cl.SetTracer(cfg.XTracer)
			for !p.stopFlag.Load() {
				op := gen.Next()
				cmd := opToCommand(op)
				start := time.Now()
				_, err := cl.Do(co, cmd)
				if p.stopFlag.Load() {
					return
				}
				if err != nil {
					p.errs.Add(1)
					if err == raft.ErrClientStopped {
						return
					}
					continue
				}
				p.tput.Inc()
				if oh := p.obsHist.Load(); oh != nil {
					oh.Record(time.Since(start))
				}
				if p.measuring.Load() {
					p.hist.Record(time.Since(start))
					p.ops.Add(1)
				}
			}
		})
	}
	return p
}

// measureFor opens a measurement window of length d and returns the
// throughput (ops/sec) observed in it.
func (p *clientPool) measureFor(d time.Duration) float64 {
	before := p.ops.Load()
	p.measuring.Store(true)
	start := time.Now()
	clock.Precise(d)
	p.measuring.Store(false)
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(p.ops.Load()-before) / el
}

// stop winds the client population down, waiting briefly for in-flight
// ops; stragglers are cut off when close() stops the runtimes.
func (p *clientPool) stop() {
	p.stopFlag.Store(true)
	done := make(chan struct{})
	go func() { p.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
}

// close tears down the client endpoints and runtimes.
func (p *clientPool) close() {
	for i := range p.rts {
		p.eps[i].Close()
		p.rts[i].Stop()
	}
}

// Run executes one measurement and returns its result.
func Run(cfg RunConfig) (RunResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.ClientRuntimes <= 0 {
		cfg.ClientRuntimes = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 48
	}
	var collector *trace.Collector
	if cfg.Traced {
		collector = trace.NewCollector(2_000_000)
	}

	h, err := buildCluster(cfg, collector)
	if err != nil {
		return RunResult{}, err
	}
	defer h.stop()

	// Wait for a settled leader.
	leader, err := h.waitLeader(15 * time.Second)
	if err != nil {
		return RunResult{}, err
	}

	// Inject the fault into followers only (§2.1 of the paper).
	injected := 0
	for _, n := range h.names {
		if n == leader || injected >= cfg.FaultFollowers {
			continue
		}
		if cfg.Fault == failslow.None {
			failslow.Apply(h.envs[n], cfg.Fault, cfg.Intensity)
		} else {
			failslow.ApplyObserved(cfg.Recorder, h.envs[n], cfg.Fault, cfg.Intensity)
		}
		injected++
	}

	// Client population.
	pool := startClients(h, cfg, leader, collector)
	defer pool.close()
	stopSampler := startSampler(cfg.Recorder, pool, h, collector, cfg.XTracer)
	defer stopSampler()

	phase(cfg.Recorder, "warmup")
	clock.Precise(cfg.Warmup)
	electionsBefore := h.elections()
	phase(cfg.Recorder, "measure")
	pool.measuring.Store(true)
	measStart := time.Now()
	clock.Precise(cfg.Duration)
	pool.measuring.Store(false)
	measured := time.Since(measStart)
	phase(cfg.Recorder, "measure-end")
	electionsAfter := h.elections()
	pool.stop()

	snap := pool.hist.Snapshot()
	res := RunResult{
		System:        cfg.System,
		Nodes:         cfg.Nodes,
		Fault:         cfg.Fault,
		Ops:           pool.ops.Load(),
		Errors:        pool.errs.Load(),
		Duration:      measured,
		Throughput:    float64(pool.ops.Load()) / measured.Seconds(),
		Mean:          snap.Mean,
		P50:           snap.P50,
		P99:           snap.P99,
		LeaderCrashed: h.crashed(),
		Disturbed:     electionsAfter > electionsBefore,
		Collector:     collector,
	}
	// A P99 an order of magnitude above the median marks a stall
	// episode in the window — leadership churn our counter missed, or
	// the host stealing the (often single) CPU. Either way the window
	// measured the episode, not the configuration.
	if res.P50 > 0 && res.P99 > 8*res.P50 {
		res.Disturbed = true
	}
	return res, nil
}

// RunStable repeats Run until the measurement window is free of
// leadership churn (up to attempts tries), returning the last run.
func RunStable(cfg RunConfig, attempts int) (RunResult, error) {
	var res RunResult
	var err error
	for i := 0; i < attempts; i++ {
		res, err = Run(cfg)
		if err != nil || !res.Disturbed {
			return res, err
		}
	}
	return res, err
}

// opToCommand converts a YCSB op to a KV command.
func opToCommand(op ycsb.Op) kv.Command {
	switch op.Type {
	case ycsb.Read:
		return kv.Command{Op: kv.OpGet, Key: op.Key}
	case ycsb.Scan:
		return kv.Command{Op: kv.OpScan, Key: op.Key, ScanLen: op.ScanLen}
	case ycsb.Insert, ycsb.Update, ycsb.ReadModifyWrite:
		return kv.Command{Op: kv.OpPut, Key: op.Key, Value: op.Value}
	}
	return kv.Command{Op: kv.OpGet, Key: op.Key}
}

func otherNames(names []string, leader string) []string {
	out := make([]string, 0, len(names)-1)
	for _, n := range names {
		if n != leader {
			out = append(out, n)
		}
	}
	return out
}

// buildCluster constructs the system under test.
func buildCluster(cfg RunConfig, collector *trace.Collector) (*clusterHandle, error) {
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i+1)
	}
	net := transport.NewNetwork()
	envs := make(map[string]*env.Env)
	ecfg := env.DefaultConfig()

	if cfg.System == DepFastRaft {
		servers := make(map[string]*raft.Server)
		for i, name := range names {
			rcfg := raft.DefaultConfig(name, names)
			rcfg.Seed = cfg.Seed + int64(i)*7919
			rcfg.Recorder = cfg.Recorder
			rcfg.Tracer = cfg.XTracer
			if cfg.RaftMutate != nil {
				cfg.RaftMutate(&rcfg)
			}
			e := env.New(name, ecfg)
			var opts []core.Option
			if collector != nil {
				opts = append(opts, core.WithTracer(collector))
			}
			s := raft.NewServer(rcfg, e, net, opts...)
			net.Register(name, e, s.TransportHandler())
			servers[name] = s
			envs[name] = e
		}
		for _, s := range servers {
			s.Start()
		}
		return &clusterHandle{
			names:       names,
			net:         net,
			envs:        envs,
			raftServers: servers,
			stop: func() {
				for _, s := range servers {
					s.Stop()
				}
				net.Close()
			},
			leader:  func() (string, bool) { return raft.AgreedLeader(servers) },
			crashed: func() bool { return false },
			elections: func() int64 {
				var total int64
				for _, s := range servers {
					total += s.Elections.Value()
				}
				return total
			},
		}, nil
	}

	// Baseline systems.
	var kind baseline.Kind
	switch cfg.System {
	case SyncRSM:
		kind = baseline.SyncRSM
	case BufferRSM:
		kind = baseline.BufferRSM
	case CallbackRSM:
		kind = baseline.CallbackRSM
	default:
		return nil, fmt.Errorf("harness: unknown system %v", cfg.System)
	}
	servers := make(map[string]*baseline.Server)
	for _, name := range names {
		bcfg := baseline.DefaultConfig(name, names, kind)
		if collector != nil {
			bcfg.Tracer = collector
		}
		if cfg.BaselineMutate != nil {
			cfg.BaselineMutate(&bcfg)
		}
		e := env.New(name, ecfg)
		s := baseline.NewServer(bcfg, e, net)
		net.Register(name, e, s.TransportHandler())
		servers[name] = s
		envs[name] = e
	}
	for _, s := range servers {
		s.Start()
	}
	leaderName := names[0]
	return &clusterHandle{
		names: names,
		net:   net,
		envs:  envs,
		stop: func() {
			for _, s := range servers {
				s.Stop()
			}
			net.Close()
		},
		leader:    func() (string, bool) { return leaderName, true },
		crashed:   func() bool { return servers[leaderName].Crashed() },
		elections: func() int64 { return 0 },
	}, nil
}
