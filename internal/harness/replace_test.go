package harness

import (
	"testing"
	"time"

	"depfast/internal/obs"
	"depfast/internal/raft"
)

func shortReplacementCfg() ReplacementRunConfig {
	cfg := DefaultReplacementRunConfig()
	cfg.Clients = 24
	cfg.ClientRuntimes = 2
	cfg.Records = 500
	cfg.Warmup = 300 * time.Millisecond
	cfg.PreWindow = 600 * time.Millisecond
	cfg.Settle = 300 * time.Millisecond
	cfg.PostWindow = time.Second
	cfg.RaftMutate = func(rc *raft.Config) {
		// Field-wise so the replacement knobs set by RunReplacement
		// (ReplaceAfterQuarantines, SlowBudget) survive.
		rc.Mitigate.Interval = 15 * time.Millisecond
		rc.Mitigate.MinQuarantine = 150 * time.Millisecond
		rc.Mitigate.TransferCooldown = time.Second
	}
	return cfg
}

// TestRunReplacement is the ISSUE acceptance experiment: a fail-slow
// follower is detected, quarantined, condemned, removed, and a spare
// joins as a learner and is promoted — returning the cluster to full
// replication factor with zero acknowledged-write loss, steady-state
// throughput within 10% of baseline, and the whole sequence captured
// as ordered flight-recorder events.
func TestRunReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("replacement experiment is seconds-long")
	}
	var res ReplacementResult
	var rec *obs.Recorder
	for attempt := 0; attempt < 2; attempt++ {
		rec = obs.NewRecorder(0)
		cfg := shortReplacementCfg()
		cfg.Recorder = rec
		var err error
		if res, err = RunReplacement(cfg); err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: %s", attempt, res)
		// Correctness must hold every attempt; only the throughput
		// window is allowed a retry on a noisy host.
		if !res.Replaced {
			t.Fatalf("cluster never returned to %d voters: final=%v", 3, res.FinalVoters)
		}
		if res.LostWrites != 0 {
			t.Fatalf("lost %d of %d acknowledged writes", res.LostWrites, res.AckedWrites)
		}
		if res.PostTput >= 0.9*res.PreTput {
			break
		}
	}

	if res.AckedWrites == 0 {
		t.Error("auditor acknowledged no writes")
	}
	if res.Spare == res.Faulted {
		t.Errorf("spare %q equals faulted node", res.Spare)
	}
	for _, v := range res.FinalVoters {
		if v == res.Faulted {
			t.Errorf("faulted node %s still a voter: %v", res.Faulted, res.FinalVoters)
		}
	}
	found := false
	for _, v := range res.FinalVoters {
		if v == res.Spare {
			found = true
		}
	}
	if !found {
		t.Errorf("spare %s not among final voters %v", res.Spare, res.FinalVoters)
	}
	if res.PostTput < 0.9*res.PreTput {
		if raceEnabled {
			t.Logf("post-replacement throughput %.0f op/s < 0.9x baseline %.0f op/s (tolerated under -race)",
				res.PostTput, res.PreTput)
		} else {
			t.Errorf("post-replacement throughput %.0f op/s < 0.9x baseline %.0f op/s",
				res.PostTput, res.PreTput)
		}
	}
	if res.MTTD <= 0 {
		t.Error("MTTD not derived from the recorder")
	}
	if res.ReplacedIn <= 0 {
		t.Error("replacement latency not derived from the recorder")
	}

	// The full sequence, in order, on one timeline.
	type step struct {
		name string
		at   time.Time
	}
	var seq []step
	mark := func(name string, ev obs.Event) {
		seq = append(seq, step{name, ev.Time})
	}
	for _, ev := range rec.Events() {
		switch {
		case ev.Type == obs.FaultInjected && ev.Node == res.Faulted && len(seq) == 0:
			mark("fault-injected", ev)
		case ev.Type == obs.QuarantineEnter && ev.Peer == res.Faulted && len(seq) == 1:
			mark("quarantined", ev)
		case ev.Type == obs.MemberRemoved && ev.Peer == res.Faulted && len(seq) == 2:
			mark("removed", ev)
		case ev.Type == obs.MemberAdded && ev.Peer == res.Spare && ev.Detail == "learner" && len(seq) == 3:
			mark("learner-joined", ev)
		case ev.Type == obs.LearnerCaughtUp && ev.Peer == res.Spare && len(seq) == 4:
			mark("caught-up", ev)
		case ev.Type == obs.MemberAdded && ev.Peer == res.Spare && ev.Detail == "voter" && len(seq) == 5:
			mark("promoted", ev)
		case ev.Type == obs.ReplacementCompleted && ev.Peer == res.Faulted && len(seq) == 6:
			mark("completed", ev)
		}
	}
	want := []string{"fault-injected", "quarantined", "removed", "learner-joined", "caught-up", "promoted", "completed"}
	if len(seq) != len(want) {
		got := make([]string, len(seq))
		for i, s := range seq {
			got[i] = s.name
		}
		t.Fatalf("event sequence incomplete: got %v, want %v", got, want)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].at.Before(seq[i-1].at) {
			t.Errorf("event %s at %v precedes %s at %v", seq[i].name, seq[i].at, seq[i-1].name, seq[i-1].at)
		}
	}
}
