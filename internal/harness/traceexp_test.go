package harness

import (
	"testing"

	"depfast/internal/xtrace"
)

// TestTraceExperimentAttribution runs the scripted leader-disk fault
// and checks the tracing plane end to end: traces are kept, the frozen
// deadline promotes a tail, and the critical-path attribution blames
// the injected (leader, disk) pair. The threshold here is deliberately
// looser than the CI trace-smoke gate (90%) so scheduler noise on a
// loaded test machine does not flake the tier-1 suite.
func TestTraceExperimentAttribution(t *testing.T) {
	cfg := DefaultTraceExpConfig()
	cfg.OverheadTrials = 0 // overhead ratio is CI trace-smoke's concern
	res, err := RunTraceExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
	if res.Kept == 0 {
		t.Fatal("collector kept no traces under load")
	}
	if res.Tail == 0 {
		t.Fatal("frozen deadline promoted no traces despite an injected fault")
	}
	if res.MatchFraction < 0.7 {
		t.Fatalf("only %.0f%% of promoted traces blame (leader, disk); want >= 70%%",
			res.MatchFraction*100)
	}
	top := res.Attribution.Top()
	if top.Node == "" {
		t.Fatal("attribution over the promoted tail is empty")
	}
	if top.Node != res.Leader || top.Res != xtrace.Disk {
		t.Fatalf("aggregate top blame is (%s, %s); injected fault was (%s, disk)",
			top.Node, top.Res, res.Leader)
	}
}
