package harness

import (
	"fmt"
	"strings"
	"time"

	"depfast/internal/core"
	"depfast/internal/env"
	"depfast/internal/failslow"
	"depfast/internal/kv"
	"depfast/internal/raft"
	"depfast/internal/rpc"
	"depfast/internal/shard"
	"depfast/internal/trace"
	"depfast/internal/transport"
	"depfast/internal/ycsb"
)

// FigureCell is one (system, fault) measurement with its
// normalization against the same system's no-fault baseline.
type FigureCell struct {
	Result   RunResult
	NormTput float64 // faulted / baseline (1.0 = no change)
	NormMean float64
	NormP99  float64
}

// FigureResult is a complete figure's data.
type FigureResult struct {
	Title string
	// Groups maps a group label (system or node-count) to its cells in
	// fault order; Order preserves group ordering.
	Order  []string
	Groups map[string][]FigureCell
}

// Render formats the figure as the three panels of the paper: (a)
// throughput, (b) average latency, (c) P99 latency — normalized for
// Figure 1 and absolute for Figure 3.
func (f *FigureResult) Render(normalized bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	panels := []struct {
		name string
		get  func(FigureCell) string
	}{
		{"(a) Throughput", func(c FigureCell) string {
			if normalized {
				return fmt.Sprintf("%7.2fx", c.NormTput)
			}
			return fmt.Sprintf("%7.0f/s", c.Result.Throughput)
		}},
		{"(b) Average Latency", func(c FigureCell) string {
			if normalized {
				return fmt.Sprintf("%7.2fx", c.NormMean)
			}
			return fmt.Sprintf("%9v", c.Result.Mean.Round(10*time.Microsecond))
		}},
		{"(c) P99 Latency", func(c FigureCell) string {
			if normalized {
				return fmt.Sprintf("%7.2fx", c.NormP99)
			}
			return fmt.Sprintf("%9v", c.Result.P99.Round(10*time.Microsecond))
		}},
	}
	for _, panel := range panels {
		fmt.Fprintf(&b, "\n%s\n", panel.name)
		fmt.Fprintf(&b, "%-22s", "fault \\ group")
		for _, g := range f.Order {
			fmt.Fprintf(&b, " %12s", g)
		}
		b.WriteString("\n")
		if len(f.Order) == 0 {
			continue
		}
		nFaults := len(f.Groups[f.Order[0]])
		for fi := 0; fi < nFaults; fi++ {
			fmt.Fprintf(&b, "%-22s", f.Groups[f.Order[0]][fi].Result.Fault.String())
			for _, g := range f.Order {
				cell := f.Groups[g][fi]
				val := panel.get(cell)
				if cell.Result.LeaderCrashed {
					val += "!"
				}
				fmt.Fprintf(&b, " %12s", val)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// normalizeAgainst fills the cells' normalized fields using base.
func normalizeAgainst(base RunResult, cells []FigureCell) {
	for i := range cells {
		r := cells[i].Result
		if base.Throughput > 0 {
			cells[i].NormTput = r.Throughput / base.Throughput
		}
		if base.Mean > 0 {
			cells[i].NormMean = float64(r.Mean) / float64(base.Mean)
		}
		if base.P99 > 0 {
			cells[i].NormP99 = float64(r.P99) / float64(base.P99)
		}
	}
}

// ExperimentConfig shapes a whole figure run.
type ExperimentConfig struct {
	Duration time.Duration
	Warmup   time.Duration
	Clients  int
	Records  int
	Faults   []failslow.Fault
	Seed     int64
	// Progress, if set, receives one line per completed run.
	Progress func(string)
}

// DefaultExperimentConfig returns seconds-scale settings.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Duration: 3 * time.Second,
		Warmup:   750 * time.Millisecond,
		Clients:  24,
		Records:  2000,
		Faults:   failslow.All,
		Seed:     42,
	}
}

func (e ExperimentConfig) progress(format string, args ...interface{}) {
	if e.Progress != nil {
		e.Progress(fmt.Sprintf(format, args...))
	}
}

// Figure1 reproduces the paper's Figure 1: the three baseline RSMs,
// three-node deployments, one fail-slow follower, all fault types,
// normalized to each system's own no-fault run.
func Figure1(ecfg ExperimentConfig) (*FigureResult, error) {
	fig := &FigureResult{
		Title:  "Figure 1: baseline RSMs, 3 nodes, 1 fail-slow follower (normalized)",
		Groups: make(map[string][]FigureCell),
	}
	for _, sys := range Baselines {
		var base RunResult
		var cells []FigureCell
		for _, fault := range ecfg.Faults {
			cfg := DefaultRunConfig(sys)
			cfg.Duration = ecfg.Duration
			cfg.Warmup = ecfg.Warmup
			cfg.Clients = ecfg.Clients
			cfg.Records = ecfg.Records
			cfg.Fault = fault
			cfg.Seed = ecfg.Seed
			res, err := RunStable(cfg, 3)
			if err != nil {
				return nil, fmt.Errorf("figure1 %v/%v: %w", sys, fault, err)
			}
			ecfg.progress("%s", res)
			if fault == failslow.None {
				base = res
			}
			cells = append(cells, FigureCell{Result: res})
		}
		normalizeAgainst(base, cells)
		fig.Order = append(fig.Order, sys.String())
		fig.Groups[sys.String()] = cells
	}
	return fig, nil
}

// Figure3 reproduces the paper's Figure 3: DepFastRaft under 3- and
// 5-node deployments with a minority of fail-slow followers, absolute
// throughput and latency.
func Figure3(ecfg ExperimentConfig) (*FigureResult, error) {
	fig := &FigureResult{
		Title:  "Figure 3: DepFastRaft, minority fail-slow followers (absolute)",
		Groups: make(map[string][]FigureCell),
	}
	for _, nodes := range []int{3, 5} {
		var base RunResult
		var cells []FigureCell
		for _, fault := range ecfg.Faults {
			cfg := DefaultRunConfig(DepFastRaft)
			cfg.Nodes = nodes
			cfg.FaultFollowers = (nodes - 1) / 2 // a minority of followers
			cfg.Duration = ecfg.Duration
			cfg.Warmup = ecfg.Warmup
			cfg.Clients = ecfg.Clients
			cfg.Records = ecfg.Records
			cfg.Fault = fault
			cfg.Seed = ecfg.Seed
			res, err := RunStable(cfg, 3)
			if err != nil {
				return nil, fmt.Errorf("figure3 %d/%v: %w", nodes, fault, err)
			}
			ecfg.progress("%s", res)
			if fault == failslow.None {
				base = res
			}
			cells = append(cells, FigureCell{Result: res})
		}
		normalizeAgainst(base, cells)
		label := fmt.Sprintf("%d Nodes", nodes)
		fig.Order = append(fig.Order, label)
		fig.Groups[label] = cells
	}
	return fig, nil
}

// MaxDrift returns the largest relative deviation from 1.0 across all
// normalized metrics of a figure group — the paper's "within 5%"
// claim for DepFastRaft.
func (f *FigureResult) MaxDrift(group string) float64 {
	max := 0.0
	for _, c := range f.Groups[group] {
		for _, v := range []float64{c.NormTput, c.NormMean, c.NormP99} {
			if v == 0 {
				continue
			}
			d := v - 1
			if d < 0 {
				d = -d
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// Table1Row is one fault-catalog entry with its measured effect.
type Table1Row struct {
	Fault     failslow.Fault
	Injection string
	// Measured service-time stretch factors on a probe node.
	ComputeFactor float64
	DiskFactor    float64
	NetFactor     float64
}

// Table1 reproduces the paper's Table 1: the simulated fault catalog,
// with the measured stretch each fault applies to the affected
// resource (the cgroup/tc substitution made concrete).
func Table1(in failslow.Intensity) []Table1Row {
	rows := make([]Table1Row, 0, len(failslow.All))
	for _, f := range failslow.All {
		probe := env.New("probe", env.DefaultConfig())
		healthyCompute := probe.ComputeCost(time.Millisecond)
		healthyDisk := probe.DiskWriteCost(4096)
		healthyNet := probe.NetDelay()

		failslow.Apply(probe, f, in)
		if f == failslow.MemContention {
			probe.TrackAlloc(64 << 20) // representative resident set
		}
		// Average over draws: the contention faults are probabilistic.
		const draws = 200
		var compute, disk time.Duration
		for i := 0; i < draws; i++ {
			compute += probe.ComputeCost(time.Millisecond)
			disk += probe.DiskWriteCost(4096)
		}
		rows = append(rows, Table1Row{
			Fault:         f,
			Injection:     f.Injection(),
			ComputeFactor: float64(compute/draws) / float64(healthyCompute),
			DiskFactor:    float64(disk/draws) / float64(healthyDisk),
			NetFactor:     float64(probe.NetDelay()) / float64(healthyNet),
		})
	}
	return rows
}

// RenderTable1 formats the fault catalog.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("== Table 1: simulated fail-slow faults and measured resource stretch ==\n")
	fmt.Fprintf(&b, "%-20s %9s %9s %9s  %s\n",
		"FAULT", "CPU x", "DISK x", "NET x", "INJECTION")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %9.2f %9.2f %9.2f  %s\n",
			r.Fault, r.ComputeFactor, r.DiskFactor, r.NetFactor, r.Injection)
	}
	return b.String()
}

// Figure2 reproduces the paper's Figure 2: a three-shard DepFastRaft
// deployment (s1–s9) with three clients (c1–c3), traced, returning
// the slowness propagation graph. Intra-quorum edges come out green
// (2/3) and client→leader edges red (1/1). The deployment is built
// through shard.Cluster — the same construction path the containment
// experiments use — with the layout and seeds the figure has always
// had.
func Figure2(duration time.Duration, opsPerClient int) (*trace.SPG, *trace.Collector, error) {
	collector := trace.NewCollector(0)
	net := transport.NewNetwork()
	defer net.Close()
	ecfg := env.DefaultConfig()

	smap := shard.NewMap(shard.NewHashPartitioner(3), 3)
	cluster := shard.NewCluster(shard.ClusterConfig{
		Map:         smap,
		Seed:        func(g, i int) int64 { return int64(g*100 + i) },
		RuntimeOpts: []core.Option{core.WithTracer(collector)},
	}, net)
	cluster.Start()
	defer cluster.Stop()

	// One client per shard.
	done := make(chan error, 3)
	var rts []*core.Runtime
	var eps []*rpc.Endpoint
	for g := 0; g < smap.Groups(); g++ {
		name := fmt.Sprintf("c%d", g+1)
		rt := core.NewRuntime(name, core.WithTracer(collector))
		ep := rpc.NewEndpoint(name, rt, net, rpc.WithCallTimeout(3*time.Second))
		net.Register(name, env.New(name, ecfg), ep.TransportHandler())
		rts = append(rts, rt)
		eps = append(eps, ep)
		names := smap.Replicas(g)
		g := g
		rt.Spawn("client", func(co *core.Coroutine) {
			cl := raft.NewClient(uint64(g+1), ep, names, 3*time.Second)
			gen := ycsb.NewGenerator(ycsb.PaperWrite(500, 64), int64(g))
			deadline := time.Now().Add(duration)
			for i := 0; i < opsPerClient && time.Now().Before(deadline); i++ {
				op := gen.Next()
				if _, err := cl.Do(co, kv.Command{Op: kv.OpPut, Key: op.Key, Value: op.Value}); err != nil {
					//depfast:allow deadline-propagation one send per client into a channel buffered for all clients: cannot block
					done <- err
					return
				}
			}
			//depfast:allow deadline-propagation one send per client into a channel buffered for all clients: cannot block
			done <- nil
		})
	}
	defer func() {
		for i := range rts {
			eps[i].Close()
			rts[i].Stop()
		}
	}()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				return nil, nil, fmt.Errorf("figure2 client: %w", err)
			}
		case <-time.After(duration + 30*time.Second):
			return nil, nil, fmt.Errorf("figure2: clients hung")
		}
	}
	return trace.BuildSPG(collector.Records()), collector, nil
}
