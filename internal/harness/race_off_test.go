//go:build !race

package harness

// raceEnabled reports that the race detector instruments this build.
const raceEnabled = false
