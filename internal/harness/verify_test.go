package harness

import (
	"strings"
	"testing"
	"time"
)

func TestVerifySystemsContrast(t *testing.T) {
	ecfg := DefaultExperimentConfig()
	ecfg.Duration = 600 * time.Millisecond
	ecfg.Warmup = 200 * time.Millisecond
	ecfg.Clients = 12
	results, err := VerifySystems(ecfg, []System{DepFastRaft, CallbackRSM})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[System]VerifyResult{}
	for _, r := range results {
		byName[r.System] = r
	}
	df := byName[DepFastRaft]
	if !df.Pass {
		t.Errorf("DepFastRaft failed verification with %d violations", df.Violations)
	}
	if df.QuorumEdges == 0 {
		t.Error("DepFastRaft produced no quorum edges")
	}
	cb := byName[CallbackRSM]
	if cb.Pass {
		t.Error("CallbackRSM passed verification — its all-replica flow-control wait should be flagged")
	}
	out := RenderVerify(results)
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Errorf("render: %s", out)
	}
	t.Logf("\n%s", out)
}
