package harness

import (
	"fmt"
	"strings"
	"time"

	"depfast/internal/clock"
	"depfast/internal/failslow"
	"depfast/internal/obs"
	"depfast/internal/raft"
	"depfast/internal/trace"
)

// MitigationRunConfig parameterizes one phased mitigation experiment:
// settle, measure a healthy window, inject a fail-slow fault, wait a
// grace period for detection + response, measure a faulted window,
// then optionally clear the fault and wait for rehabilitation.
type MitigationRunConfig struct {
	// Mitigated enables the sentinel (raft.Config.Mitigation).
	Mitigated bool

	// Fault is injected after the pre-fault window; FaultLeader selects
	// the current leader (exercising self-demotion) instead of one
	// follower (exercising quarantine).
	Fault       failslow.Fault
	FaultLeader bool
	Intensity   failslow.Intensity

	Nodes          int
	Clients        int
	ClientRuntimes int
	Records        int
	ValueSize      int
	Seed           int64

	// Phase lengths. Grace sits between injection and the post window
	// so the post window measures the mitigated steady state, not the
	// detection transient.
	Warmup     time.Duration
	PreWindow  time.Duration
	Grace      time.Duration
	PostWindow time.Duration

	// Clear lifts the fault after the post window and polls up to
	// RehabWait for every quarantine to be released.
	Clear     bool
	RehabWait time.Duration

	// RaftMutate tweaks server configs (e.g. sentinel cadence) after
	// the Mitigation flag is applied.
	RaftMutate func(*raft.Config)

	// Recorder, when set, captures the run's full timeline — phases,
	// injection, detector verdicts, sentinel actions, gauge samples —
	// and MTTD/MTTR are derived from it into the result.
	Recorder *obs.Recorder

	// Traced attaches a wait-record collector so the recorder also
	// carries periodic SPG snapshots.
	Traced bool
}

// DefaultMitigationRunConfig returns the scaled-down leader CPU-slow
// scenario used by the EXPERIMENTS.md mitigation table.
func DefaultMitigationRunConfig() MitigationRunConfig {
	return MitigationRunConfig{
		Mitigated:      true,
		Fault:          failslow.CPUSlow,
		FaultLeader:    true,
		Intensity:      failslow.DefaultIntensity(),
		Nodes:          3,
		Clients:        48,
		ClientRuntimes: 4,
		Records:        2000,
		ValueSize:      100,
		Seed:           42,
		Warmup:         500 * time.Millisecond,
		PreWindow:      time.Second,
		Grace:          1200 * time.Millisecond,
		PostWindow:     1500 * time.Millisecond,
		Clear:          true,
		RehabWait:      10 * time.Second,
	}
}

// MitigationResult captures both phases plus the sentinel's visible
// actions, summed across servers (the transfer counter lives on the
// demoted leader, quarantine counters on whoever led at the time).
type MitigationResult struct {
	Mitigated bool
	Fault     failslow.Fault

	PreTput  float64 // ops/sec before the fault
	PostTput float64 // ops/sec after fault + grace

	Transfers          int64
	QuarantinesEntered int64
	QuarantinesExited  int64
	BacklogDiscarded   int64

	// LeaderMoved reports that leadership left the injected node.
	LeaderMoved bool
	// Rehabilitated / QuarantineClear are meaningful when Clear is set:
	// at least one release fired and no peer remained quarantined.
	Rehabilitated   bool
	QuarantineClear bool

	// MTTD/MTTR are derived from the flight recorder (zero without one,
	// or when the fault went undetected / throughput never sustained
	// recovery): injection → first detection event, and injection →
	// first sustained return to the pre-fault throughput baseline.
	MTTD time.Duration
	MTTR time.Duration
}

// String renders a one-line summary.
func (r MitigationResult) String() string {
	mode := "off"
	if r.Mitigated {
		mode = "on"
	}
	s := fmt.Sprintf("mitigation=%-3s fault=%-12s pre=%7.0f op/s post=%7.0f op/s transfers=%d quar=%d/%d moved=%v rehab=%v",
		mode, r.Fault, r.PreTput, r.PostTput,
		r.Transfers, r.QuarantinesEntered, r.QuarantinesExited,
		r.LeaderMoved, r.Rehabilitated)
	if r.MTTD > 0 {
		s += fmt.Sprintf(" mttd=%v", r.MTTD.Round(time.Millisecond))
	}
	if r.MTTR > 0 {
		s += fmt.Sprintf(" mttr=%v", r.MTTR.Round(time.Millisecond))
	}
	return s
}

// RunMitigation executes the phased experiment.
func RunMitigation(cfg MitigationRunConfig) (MitigationResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 3
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 48
	}
	if cfg.ClientRuntimes <= 0 {
		cfg.ClientRuntimes = 4
	}
	if cfg.RehabWait <= 0 {
		cfg.RehabWait = 10 * time.Second
	}

	rec := cfg.Recorder
	var collector *trace.Collector
	if cfg.Traced {
		collector = trace.NewCollector(2_000_000)
	}
	rcfg := RunConfig{
		System:         DepFastRaft,
		Nodes:          cfg.Nodes,
		Clients:        cfg.Clients,
		ClientRuntimes: cfg.ClientRuntimes,
		Records:        cfg.Records,
		ValueSize:      cfg.ValueSize,
		Seed:           cfg.Seed,
		Recorder:       rec,
		RaftMutate: func(rc *raft.Config) {
			rc.Mitigation = cfg.Mitigated
			if cfg.RaftMutate != nil {
				cfg.RaftMutate(rc)
			}
		},
	}
	h, err := buildCluster(rcfg, collector)
	if err != nil {
		return MitigationResult{}, err
	}
	defer h.stop()

	leader, err := h.waitLeader(15 * time.Second)
	if err != nil {
		return MitigationResult{}, err
	}

	pool := startClients(h, rcfg, leader, collector)
	defer pool.close()
	stopSampler := startSampler(rec, pool, h, collector, rcfg.XTracer)
	defer stopSampler()
	phase(rec, "warmup")
	clock.Precise(cfg.Warmup)

	res := MitigationResult{Mitigated: cfg.Mitigated, Fault: cfg.Fault}
	phase(rec, "pre-window")
	res.PreTput = pool.measureFor(cfg.PreWindow)

	// Inject into whoever leads right now (the warmup may have moved
	// it) or the first follower.
	target := leader
	if cur, ok := h.leader(); ok {
		target = cur
	}
	if !cfg.FaultLeader {
		target = otherNames(h.names, target)[0]
	}
	faulted := target
	injectedAt := time.Now()
	h.raftServers[faulted].Mitigation.MarkInjected(injectedAt)
	failslow.ApplyObserved(rec, h.envs[faulted], cfg.Fault, cfg.Intensity)

	phase(rec, "grace")
	clock.Precise(cfg.Grace)
	phase(rec, "post-window")
	res.PostTput = pool.measureFor(cfg.PostWindow)

	if cur, ok := h.leader(); ok && cur != faulted {
		res.LeaderMoved = true
	}

	if cfg.Clear {
		phase(rec, "clear")
		failslow.ClearObserved(rec, h.envs[faulted])
		// Only a run that actually quarantined someone has a
		// rehabilitation to wait for.
		entered := sumMitigation(h, func(s *raft.Server) int64 {
			return s.Mitigation.QuarantinesEntered.Value()
		})
		if entered >= 1 {
			res.Rehabilitated = clock.WaitUntil(cfg.RehabWait, 20*time.Millisecond, func() bool {
				for _, s := range h.raftServers {
					if len(s.Quarantined()) > 0 {
						return false
					}
				}
				return sumMitigation(h, func(s *raft.Server) int64 {
					return s.Mitigation.QuarantinesExited.Value()
				}) >= 1
			})
		}
		res.QuarantineClear = true
		for _, s := range h.raftServers {
			if len(s.Quarantined()) > 0 {
				res.QuarantineClear = false
			}
		}
	}

	pool.stop()
	stopSampler()

	res.Transfers = sumMitigation(h, func(s *raft.Server) int64 { return s.Mitigation.Transfers.Value() })
	res.QuarantinesEntered = sumMitigation(h, func(s *raft.Server) int64 { return s.Mitigation.QuarantinesEntered.Value() })
	res.QuarantinesExited = sumMitigation(h, func(s *raft.Server) int64 { return s.Mitigation.QuarantinesExited.Value() })
	res.BacklogDiscarded = sumMitigation(h, func(s *raft.Server) int64 { return s.Mitigation.BacklogDiscarded.Value() })

	// Derive MTTD/MTTR for this run's injection from the recorded
	// timeline. The recorder may span several runs (the experiment
	// drivers share one), so match the fault report by injection time.
	if rec != nil {
		rep := obs.Analyze(rec.Events(), obs.ReportConfig{})
		for _, f := range rep.Faults {
			if f.Node != faulted || f.InjectedAt.Before(injectedAt.Add(-time.Second)) {
				continue
			}
			res.MTTD = f.MTTD()
			res.MTTR = f.MTTR()
			if !f.RecoveredAt.IsZero() {
				h.raftServers[faulted].Mitigation.MarkRecovered(f.RecoveredAt)
			}
		}
	}
	return res, nil
}

func sumMitigation(h *clusterHandle, get func(*raft.Server) int64) int64 {
	var total int64
	for _, s := range h.raftServers {
		total += get(s)
	}
	return total
}

// MitigationExperiment runs the sentinel on/off comparison for both
// fault placements — CPU-slow leader (self-demotion path) and
// net-slow follower (quarantine + rehabilitation path) — and renders
// the EXPERIMENTS.md table.
func MitigationExperiment() (string, error) {
	return MitigationExperimentRecorded(nil)
}

// MitigationExperimentRecorded is MitigationExperiment publishing
// every run onto rec (nil disables recording): all four runs land on
// one timeline, and the mitigated rows also report MTTD/MTTR.
func MitigationExperimentRecorded(rec *obs.Recorder) (string, error) {
	scenarios := []struct {
		name   string
		fault  failslow.Fault
		leader bool
	}{
		{"leader cpu-slow", failslow.CPUSlow, true},
		{"follower net-slow", failslow.NetSlow, false},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-8s %12s %12s %10s %8s %7s %7s %9s %9s\n",
		"scenario", "sentinel", "pre (op/s)", "post (op/s)", "post/pre", "handoff", "quar", "rehab", "mttd", "mttr")
	for _, sc := range scenarios {
		for _, on := range []bool{false, true} {
			cfg := DefaultMitigationRunConfig()
			cfg.Mitigated = on
			cfg.Fault = sc.fault
			cfg.FaultLeader = sc.leader
			cfg.Recorder = rec
			r, err := RunMitigation(cfg)
			if err != nil {
				return "", err
			}
			ratio := 0.0
			if r.PreTput > 0 {
				ratio = r.PostTput / r.PreTput
			}
			fmt.Fprintf(&b, "%-18s %-8s %12.0f %12.0f %9.2fx %8v %7d %7v %9s %9s\n",
				sc.name, map[bool]string{false: "off", true: "on"}[on],
				r.PreTput, r.PostTput, ratio, r.LeaderMoved && sc.leader,
				r.QuarantinesEntered, r.Rehabilitated,
				renderTTD(r.MTTD), renderTTD(r.MTTR))
		}
	}
	return b.String(), nil
}

// renderTTD formats a time-to-X duration, "-" when it never happened.
func renderTTD(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}
