package harness

import (
	"testing"

	"depfast/internal/obs"
)

// TestHedgeChaosLinearizable is the speculation-safety chaos test:
// hedged reads and speculative write re-proposals race their primaries
// under an asymmetric one-way-delay schedule (bursty leader→client
// delay, server links healthy), and the recorded history must stay
// linearizable with no acked write lost. It also asserts the
// episode's defining property — the server-side plane never noticed.
func TestHedgeChaosLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	cfg := QuickHedgeConfig()
	cfg.Recorder = obs.NewRecorder(16384)
	res, err := RunHedge(cfg)
	if err != nil {
		t.Fatalf("RunHedge: %v", err)
	}
	t.Logf("\n%v", res)
	if res.Lin.Verdict == LinViolation {
		t.Fatalf("hedged history NOT linearizable (key %q, %d ops)", res.Lin.Key, res.Lin.Ops)
	}
	if res.AckedLoss != 0 {
		t.Fatalf("acked-write loss: %d writer keys regressed", res.AckedLoss)
	}
	if res.Fired == 0 {
		t.Fatal("episode fired no hedges; the experiment exercised nothing")
	}
	if res.Won == 0 {
		t.Fatalf("no hedge won (%d fired); follower reads never dodged the slow link", res.Fired)
	}
	// The injected delay must stay below the server-side detector's
	// horizon: zero suspicion verdicts, zero extra elections.
	if res.SuspectEvents != 0 {
		t.Fatalf("server-side detector raised %d suspicions; episode was not sub-threshold", res.SuspectEvents)
	}
	if res.ElectionsDelta != 0 {
		t.Fatalf("%d elections during the episode; fault leaked into the consensus plane", res.ElectionsDelta)
	}
	// Budget bound by construction: fired ≤ ratio × requests + burst.
	reqs := res.Healthy.Reads + res.Healthy.Writes +
		res.Unhedged.Reads + res.Unhedged.Writes +
		res.Hedged.Reads + res.Hedged.Writes
	cap := cfg.BudgetRatio*float64(reqs)*1.5 + cfg.BudgetBurst
	if float64(res.Fired) > cap {
		t.Fatalf("fired %d hedges over ~%d requests; budget bound breached (cap %.0f)",
			res.Fired, reqs, cap)
	}
}
