// Package explore is the deterministic fail-slow schedule explorer:
// it enumerates fault schedules from a seed — which resource slows
// down, on which node(s), at what intensity, injected and cleared at
// which logical step, including correlated faults within a failure
// domain, asymmetric one-way network slowness, and membership churn
// overlapping a fault — drives a full cluster through each schedule
// under an audit client population, and checks run invariants after
// every schedule: linearizability of acknowledged operations, zero
// acked-write loss, blast-radius containment for sharded runs, and
// sentinel convergence to a terminal healthy configuration. Failing
// schedules are shrunk to a minimal reproduction and re-emitted as a
// one-line replay spec that `depfast-explore -replay` re-executes.
//
// This is the paper's §3.3 testing-tool direction taken past random
// injection (failslow.RandomFaults): schedules are first-class values
// — enumerable, comparable, replayable, shrinkable.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Topo selects the deployment a schedule runs against.
type Topo int

// Topologies: a single 3-replica Raft group (plus a standby spare for
// churn schedules), or a sharded 2×3 deployment routed through the
// shard frontend.
const (
	TopoRaft Topo = iota
	TopoShard
)

// String names the topology as in replay specs.
func (t Topo) String() string {
	if t == TopoShard {
		return "shard"
	}
	return "raft"
}

// FaultKind is the schedule vocabulary — the four Table 1 resource
// families plus the two scenario actions random injection cannot
// express.
type FaultKind int

// Schedule fault kinds.
const (
	FaultCPU FaultKind = iota
	FaultDisk
	FaultNet
	FaultMem
	// FaultAsym is an asymmetric one-way network delay: only traffic
	// from Nodes toward Peer slows down; the reverse path stays fast.
	FaultAsym
	// FaultChurn removes Nodes[0] from the membership and joins the
	// standby spare in its place while the rest of the schedule runs.
	FaultChurn
)

var faultKindNames = map[FaultKind]string{
	FaultCPU:   "cpu",
	FaultDisk:  "disk",
	FaultNet:   "net",
	FaultMem:   "mem",
	FaultAsym:  "asym",
	FaultChurn: "churn",
}

// String names the kind as in replay specs.
func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled action: inject Kind on Nodes at logical step
// Step, clear it at step Until (0 = hold until the run ends). Multiple
// nodes in one event model a correlated fault — one failure domain
// (a rack switch, a shared disk shelf) degrading several replicas at
// the same instant.
type Event struct {
	Step  int
	Kind  FaultKind
	Nodes []string
	// Peer is the delay destination for FaultAsym.
	Peer string
	// Scale multiplies the base Table 1 intensity (1 = as published).
	Scale float64
	// Until is the clearing step; 0 holds the fault to the end of the
	// schedule (it is still cleared before invariants are checked).
	Until int
}

// Schedule is one complete scenario: a topology, a step count, and the
// events applied at those steps. Schedules are pure data — running one
// is the runner's job — so they can be generated, compared, printed,
// parsed, and shrunk.
type Schedule struct {
	Seed  int64
	Topo  Topo
	Steps int
	// Class labels the generator family that produced the schedule
	// (single, correlated, asym, churn, storm, replay); informational.
	Class  string
	Events []Event
}

// Spec renders the schedule as its one-line replay spec:
//
//	seed=7 topo=raft steps=6 | disk@1 s2 x1 until=4; asym@2 s3>s1 x1; churn@3 s2
//
// The spec is the schedule's identity: Parse(Spec()) round-trips, and
// `depfast-explore -replay "<spec>"` re-executes it deterministically.
func (s Schedule) Spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d topo=%s steps=%d", s.Seed, s.Topo, s.Steps)
	if len(s.Events) > 0 {
		b.WriteString(" |")
		for i, ev := range s.Events {
			if i > 0 {
				b.WriteString(";")
			}
			fmt.Fprintf(&b, " %s@%d %s", ev.Kind, ev.Step, strings.Join(ev.Nodes, ","))
			if ev.Kind == FaultAsym {
				fmt.Fprintf(&b, ">%s", ev.Peer)
			}
			if ev.Kind != FaultChurn {
				fmt.Fprintf(&b, " x%s", trimFloat(ev.Scale))
				if ev.Until > 0 {
					fmt.Fprintf(&b, " until=%d", ev.Until)
				}
			}
		}
	}
	return b.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// Parse reads a replay spec produced by Spec (whitespace-tolerant).
func Parse(spec string) (Schedule, error) {
	s := Schedule{Class: "replay"}
	head, tail, _ := strings.Cut(spec, "|")
	for _, tok := range strings.Fields(head) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return s, fmt.Errorf("explore: bad header token %q", tok)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return s, fmt.Errorf("explore: bad seed %q", v)
			}
			s.Seed = n
		case "topo":
			switch v {
			case "raft":
				s.Topo = TopoRaft
			case "shard":
				s.Topo = TopoShard
			default:
				return s, fmt.Errorf("explore: unknown topo %q", v)
			}
		case "steps":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return s, fmt.Errorf("explore: bad steps %q", v)
			}
			s.Steps = n
		default:
			return s, fmt.Errorf("explore: unknown header key %q", k)
		}
	}
	if s.Steps == 0 {
		return s, fmt.Errorf("explore: spec missing steps")
	}
	for _, part := range strings.Split(tail, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return s, err
		}
		if ev.Step >= s.Steps || ev.Until >= s.Steps {
			return s, fmt.Errorf("explore: event %q outside steps=%d", part, s.Steps)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

// parseEvent reads one "<kind>@<step> <nodes>[><peer>] [x<scale>]
// [until=<step>]" clause.
func parseEvent(part string) (Event, error) {
	fields := strings.Fields(part)
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("explore: bad event %q", part)
	}
	kindStr, stepStr, ok := strings.Cut(fields[0], "@")
	if !ok {
		return Event{}, fmt.Errorf("explore: event %q missing @step", part)
	}
	ev := Event{Scale: 1}
	found := false
	for k, name := range faultKindNames {
		if name == kindStr {
			ev.Kind, found = k, true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("explore: unknown fault kind %q", kindStr)
	}
	step, err := strconv.Atoi(stepStr)
	if err != nil || step < 0 {
		return Event{}, fmt.Errorf("explore: bad step in %q", part)
	}
	ev.Step = step

	nodes := fields[1]
	if ev.Kind == FaultAsym {
		src, dst, ok := strings.Cut(nodes, ">")
		if !ok || dst == "" {
			return Event{}, fmt.Errorf("explore: asym event %q needs src>dst", part)
		}
		nodes, ev.Peer = src, dst
	}
	ev.Nodes = strings.Split(nodes, ",")
	for _, n := range ev.Nodes {
		if n == "" {
			return Event{}, fmt.Errorf("explore: empty node in %q", part)
		}
	}

	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "x"):
			sc, err := strconv.ParseFloat(f[1:], 64)
			if err != nil || sc <= 0 {
				return Event{}, fmt.Errorf("explore: bad scale in %q", part)
			}
			ev.Scale = sc
		case strings.HasPrefix(f, "until="):
			u, err := strconv.Atoi(f[len("until="):])
			if err != nil || u <= ev.Step {
				return Event{}, fmt.Errorf("explore: bad until in %q (must exceed step)", part)
			}
			ev.Until = u
		default:
			return Event{}, fmt.Errorf("explore: unknown event field %q", f)
		}
	}
	return ev, nil
}

// Validate checks internal consistency (steps bound events, nodes
// non-empty, churn at most once).
func (s Schedule) Validate() error {
	if s.Steps <= 0 {
		return fmt.Errorf("explore: schedule needs steps > 0")
	}
	churns := 0
	for _, ev := range s.Events {
		if ev.Step < 0 || ev.Step >= s.Steps {
			return fmt.Errorf("explore: event step %d outside [0,%d)", ev.Step, s.Steps)
		}
		if ev.Until != 0 && (ev.Until <= ev.Step || ev.Until >= s.Steps) {
			return fmt.Errorf("explore: event until %d invalid for step %d", ev.Until, ev.Step)
		}
		if len(ev.Nodes) == 0 {
			return fmt.Errorf("explore: event with no nodes")
		}
		if ev.Kind == FaultAsym && ev.Peer == "" {
			return fmt.Errorf("explore: asym event needs a peer")
		}
		if ev.Kind == FaultChurn {
			churns++
		}
	}
	if churns > 1 {
		return fmt.Errorf("explore: at most one churn event per schedule")
	}
	if churns > 0 && s.Topo != TopoRaft {
		return fmt.Errorf("explore: churn requires the raft topology")
	}
	return nil
}

// FaultedNodes returns the distinct nodes any event targets, sorted.
func (s Schedule) FaultedNodes() []string {
	set := map[string]bool{}
	for _, ev := range s.Events {
		for _, n := range ev.Nodes {
			set[n] = true
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
