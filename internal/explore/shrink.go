package explore

// Shrink reduces a failing schedule to a minimal reproduction: it
// greedily tries simplifications — drop an event, drop a node from a
// correlated event, shorten a fault's window, cut trailing steps —
// keeping each one only if the schedule still fails, and repeats to a
// fixpoint. fails runs a candidate and reports whether it still
// violates an invariant (typically a closure over Run); it is the
// expensive part, so candidates are tried most-aggressive first.
//
// The result is what a human debugging the failure wants to read: the
// fewest fault events, on the fewest nodes, held for the shortest
// time, that still break the system.
func Shrink(s Schedule, fails func(Schedule) bool) Schedule {
	for {
		reduced, ok := shrinkOnce(s, fails)
		if !ok {
			return s
		}
		s = reduced
	}
}

// shrinkOnce tries each simplification on the current schedule and
// returns the first that still fails.
func shrinkOnce(s Schedule, fails func(Schedule) bool) (Schedule, bool) {
	// 1. Drop whole events, most disruptive reduction first.
	for i := range s.Events {
		c := s
		c.Events = dropEvent(s.Events, i)
		if len(c.Events) > 0 && try(c, fails) {
			return c, true
		}
	}
	// 2. Drop one node from correlated (multi-node) events.
	for i, ev := range s.Events {
		if len(ev.Nodes) < 2 {
			continue
		}
		for j := range ev.Nodes {
			c := s
			c.Events = cloneEvents(s.Events)
			c.Events[i].Nodes = dropString(ev.Nodes, j)
			if try(c, fails) {
				return c, true
			}
		}
	}
	// 3. Shorten fault windows: a held fault (Until 0) becomes a
	// one-step pulse; an already-bounded fault shrinks by one step.
	for i, ev := range s.Events {
		if ev.Kind == FaultChurn {
			continue
		}
		c := s
		c.Events = cloneEvents(s.Events)
		switch {
		case ev.Until == 0 && ev.Step+1 < s.Steps:
			c.Events[i].Until = ev.Step + 1
		case ev.Until > ev.Step+1:
			c.Events[i].Until = ev.Until - 1
		default:
			continue
		}
		if try(c, fails) {
			return c, true
		}
	}
	// 4. Cut trailing steps no event needs.
	if last := lastUsedStep(s); last+2 < s.Steps {
		c := s
		c.Steps = last + 2
		if try(c, fails) {
			return c, true
		}
	}
	return s, false
}

// try validates then runs a candidate.
func try(c Schedule, fails func(Schedule) bool) bool {
	return c.Validate() == nil && fails(c)
}

// lastUsedStep returns the highest step any event touches.
func lastUsedStep(s Schedule) int {
	last := 0
	for _, ev := range s.Events {
		if ev.Step > last {
			last = ev.Step
		}
		if ev.Until > last {
			last = ev.Until
		}
	}
	return last
}

func dropEvent(evs []Event, i int) []Event {
	out := make([]Event, 0, len(evs)-1)
	out = append(out, evs[:i]...)
	return append(out, evs[i+1:]...)
}

func cloneEvents(evs []Event) []Event {
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

func dropString(ss []string, i int) []string {
	out := make([]string, 0, len(ss)-1)
	out = append(out, ss[:i]...)
	return append(out, ss[i+1:]...)
}
