package explore

import (
	"strings"
	"testing"
	"time"

	"depfast/internal/harness"
)

// quickCfg is the test-scale runner config: short steps, modest audit
// population, bounded waits.
func quickCfg() RunnerConfig {
	return RunnerConfig{
		StepDur:      50 * time.Millisecond,
		AuditClients: 2,
		Keys:         2,
		ConvergeWait: 8 * time.Second,
		ChurnWait:    10 * time.Second,
	}
}

func TestRunRaftSingleFaultHoldsInvariants(t *testing.T) {
	s := Schedule{
		Seed: 1, Topo: TopoRaft, Steps: 4, Class: "single",
		Events: []Event{{Step: 1, Kind: FaultDisk, Nodes: []string{"s2"}, Scale: 1, Until: 3}},
	}
	v, err := Run(s, quickCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Pass {
		t.Fatalf("healthy sentinel failed invariants: %v\nconverge: %s", v.Failures, v.Converge)
	}
	if v.Ops == 0 {
		t.Fatal("audit population recorded no operations")
	}
	if v.Lin.Verdict == harness.LinViolation {
		t.Fatalf("linearizability: %+v", v.Lin)
	}
	if v.Acked == 0 {
		t.Fatal("unique-key writer acked nothing")
	}
}

func TestRunRaftCorrelatedFault(t *testing.T) {
	// Two replicas degraded at once: quorum runs through the slowness,
	// but acked writes must still survive and linearize.
	s := Schedule{
		Seed: 2, Topo: TopoRaft, Steps: 4, Class: "correlated",
		Events: []Event{{Step: 1, Kind: FaultNet, Nodes: []string{"s2", "s3"}, Scale: 0.5, Until: 2}},
	}
	v, err := Run(s, quickCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Pass {
		t.Fatalf("correlated fault broke invariants: %v\nconverge: %s", v.Failures, v.Converge)
	}
}

func TestRunRaftChurnOverlappingFault(t *testing.T) {
	s := Schedule{
		Seed: 3, Topo: TopoRaft, Steps: 5, Class: "churn",
		Events: []Event{
			{Step: 0, Kind: FaultCPU, Nodes: []string{"s3"}, Scale: 1}, // held
			{Step: 1, Kind: FaultChurn, Nodes: []string{"s3"}, Scale: 1},
		},
	}
	v, err := Run(s, quickCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Churned {
		t.Fatalf("membership change did not complete; converge: %s; failures: %v", v.Converge, v.Failures)
	}
	if !v.Pass {
		t.Fatalf("churn schedule broke invariants: %v\nconverge: %s", v.Failures, v.Converge)
	}
}

func TestRunShardContainment(t *testing.T) {
	// Fault one group of the sharded deployment; the untouched group
	// must see zero sentinel activity (blast-radius containment).
	s := Schedule{
		Seed: 4, Topo: TopoShard, Steps: 4, Class: "single",
		Events: []Event{{Step: 1, Kind: FaultDisk, Nodes: []string{"s5"}, Scale: 1, Until: 3}},
	}
	v, err := Run(s, quickCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Pass {
		t.Fatalf("sharded run broke invariants: %v\nconverge: %s", v.Failures, v.Converge)
	}
	if v.Ops == 0 {
		t.Fatal("router audit recorded no operations")
	}
}

func TestRunAsymmetricFault(t *testing.T) {
	s := Schedule{
		Seed: 5, Topo: TopoRaft, Steps: 4, Class: "asym",
		Events: []Event{{Step: 1, Kind: FaultAsym, Nodes: []string{"s2"}, Peer: "s1", Scale: 1, Until: 3}},
	}
	v, err := Run(s, quickCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.Pass {
		t.Fatalf("asym fault broke invariants: %v\nconverge: %s", v.Failures, v.Failures)
	}
}

// TestBrokenSentinelFailsShrinksAndReplays is the acceptance
// self-test: a deliberately mis-tuned sentinel (hair-trigger
// quarantine, no replacement) must yield a failing schedule; that
// failure must shrink to a minimal repro of at most 3 events; and the
// printed replay spec must re-execute to the same verdict.
func TestBrokenSentinelFailsShrinksAndReplays(t *testing.T) {
	cfg := quickCfg()
	cfg.Broken = true
	cfg.ConvergeWait = 2 * time.Second // broken runs fail by timeout; keep probes cheap

	rep, err := Explore(3, 2, 5, cfg, nil)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if rep.Passed() {
		t.Fatalf("broken sentinel passed exploration:\n%s", rep)
	}

	// Shrink the first failure whose failure actually reproduces —
	// ShrinkFailure's own gate — so a timing-marginal failure (e.g. a
	// low-intensity pulse that fires most-but-not-all runs) is skipped
	// rather than shrunk into a flaky repro.
	var min Schedule
	var v Verdict
	reproduced := false
	for _, f := range rep.Failures {
		if min, v, reproduced = ShrinkFailure(f.Schedule, cfg); reproduced {
			break
		}
	}
	if !reproduced {
		t.Fatalf("no explored failure reproduced for shrinking:\n%s", rep)
	}
	if v.Pass {
		t.Fatalf("shrunk schedule passes: %s", min.Spec())
	}
	if len(min.Events) > 3 {
		t.Fatalf("shrunk to %d events, want <= 3: %s", len(min.Events), min.Spec())
	}

	// Replay from the printed spec alone.
	back, err := Parse(min.Spec())
	if err != nil {
		t.Fatalf("replay spec unparseable: %v", err)
	}
	rv, err := Run(back, cfg)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if rv.Pass {
		t.Fatalf("replayed spec did not reproduce the failure: %s", min.Spec())
	}
	if !strings.Contains(strings.Join(rv.Failures, "\n"), "convergence") {
		t.Fatalf("expected a convergence violation, got: %v", rv.Failures)
	}
}

func TestExploreSmallBudgetGreen(t *testing.T) {
	cfg := quickCfg()
	rep, err := Explore(1, 2, 4, cfg, nil)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !rep.Passed() {
		t.Fatalf("healthy exploration failed:\n%s", rep)
	}
	if len(rep.Verdicts) != 2 {
		t.Fatalf("explored %d schedules, want 2", len(rep.Verdicts))
	}
	if rep.SchedulesPerSec() <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
}
