package explore

import (
	"math/rand"
)

// Generator enumerates schedules deterministically from a seed: the
// i-th schedule of seed S is the same on every machine, every run. It
// rotates through scenario classes so any budget covers the whole
// vocabulary — single faults, correlated failure domains, asymmetric
// one-way network slowness, membership churn overlapping a fault, and
// multi-fault storms — across both topologies.
type Generator struct {
	seed  int64
	steps int
}

// NewGenerator returns a generator for seed; steps is the logical
// step count of produced schedules (<= 0 means 6).
func NewGenerator(seed int64, steps int) *Generator {
	if steps <= 0 {
		steps = 6
	}
	return &Generator{seed: seed, steps: steps}
}

// Scenario classes, rotated by schedule index.
var classes = []string{"single", "correlated", "asym", "churn", "storm"}

// raftNodes are the fault targets of the raft topology ("s4" is the
// standby spare and never a target); shardNodes span the 2×3 sharded
// deployment, where s1-s3 form group 1 and s4-s6 group 2.
var (
	raftNodes  = []string{"s1", "s2", "s3"}
	shardNodes = [][]string{{"s1", "s2", "s3"}, {"s4", "s5", "s6"}}
)

// Schedule returns the idx-th schedule of the seed. Every 6th
// schedule targets the sharded topology (except churn, which needs
// the raft spare machinery); the rest drive the single raft group.
func (g *Generator) Schedule(idx int) Schedule {
	rng := rand.New(rand.NewSource(g.seed*1_000_003 + int64(idx)))
	class := classes[idx%len(classes)]
	topo := TopoRaft
	if idx%6 == 4 && class != "churn" {
		topo = TopoShard
	}
	s := Schedule{Seed: g.seed, Topo: topo, Steps: g.steps, Class: class}

	domain := raftNodes
	if topo == TopoShard {
		domain = shardNodes[rng.Intn(len(shardNodes))]
	}

	switch class {
	case "single":
		s.Events = append(s.Events, g.resourceEvent(rng, domain, 1))
	case "correlated":
		// One failure domain degrading two replicas at the same
		// instant — the rack-switch / shared-shelf scenario a
		// per-node random injector essentially never produces.
		ev := g.resourceEvent(rng, domain, 2)
		s.Events = append(s.Events, ev)
	case "asym":
		src := domain[rng.Intn(len(domain))]
		dst := pickOther(rng, domain, src)
		step := rng.Intn(g.steps - 1)
		s.Events = append(s.Events, Event{
			Step:  step,
			Kind:  FaultAsym,
			Nodes: []string{src},
			Peer:  dst,
			Scale: g.scale(rng),
			Until: g.until(rng, step),
		})
	case "churn":
		// A resource fault lands first and is still active when the
		// membership change begins — replacement under degradation.
		fault := g.resourceEvent(rng, domain, 1)
		fault.Until = 0 // hold through the churn
		churnStep := fault.Step + 1
		if churnStep >= g.steps {
			churnStep = g.steps - 1
		}
		s.Events = append(s.Events,
			fault,
			Event{Step: churnStep, Kind: FaultChurn, Nodes: []string{domain[rng.Intn(len(domain))]}, Scale: 1},
		)
	case "storm":
		n := 3
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				src := domain[rng.Intn(len(domain))]
				step := rng.Intn(g.steps - 1)
				s.Events = append(s.Events, Event{
					Step:  step,
					Kind:  FaultAsym,
					Nodes: []string{src},
					Peer:  pickOther(rng, domain, src),
					Scale: g.scale(rng),
					Until: g.until(rng, step),
				})
				continue
			}
			s.Events = append(s.Events, g.resourceEvent(rng, domain, 1))
		}
	}
	return s
}

// resourceEvent draws one cpu/disk/net/mem event on n distinct nodes
// of the domain.
func (g *Generator) resourceEvent(rng *rand.Rand, domain []string, n int) Event {
	kinds := []FaultKind{FaultCPU, FaultDisk, FaultNet, FaultMem}
	step := rng.Intn(g.steps - 1)
	targets := make([]string, 0, n)
	for _, i := range rng.Perm(len(domain)) {
		if len(targets) == n {
			break
		}
		targets = append(targets, domain[i])
	}
	return Event{
		Step:  step,
		Kind:  kinds[rng.Intn(len(kinds))],
		Nodes: targets,
		Scale: g.scale(rng),
		Until: g.until(rng, step),
	}
}

// until draws a clearing step after step (or 0: hold to run end).
func (g *Generator) until(rng *rand.Rand, step int) int {
	if rng.Intn(2) == 0 || step >= g.steps-2 {
		return 0
	}
	return step + 1 + rng.Intn(g.steps-step-2)
}

func (g *Generator) scale(rng *rand.Rand) float64 {
	return []float64{0.5, 1, 2}[rng.Intn(3)]
}

func pickOther(rng *rand.Rand, domain []string, not string) string {
	for {
		n := domain[rng.Intn(len(domain))]
		if n != not {
			return n
		}
	}
}
