package explore

import (
	"reflect"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	s := Schedule{
		Seed:  7,
		Topo:  TopoRaft,
		Steps: 6,
		Class: "storm",
		Events: []Event{
			{Step: 1, Kind: FaultDisk, Nodes: []string{"s2"}, Scale: 1, Until: 4},
			{Step: 2, Kind: FaultAsym, Nodes: []string{"s3"}, Peer: "s1", Scale: 2},
			{Step: 3, Kind: FaultChurn, Nodes: []string{"s2"}, Scale: 1},
		},
	}
	spec := s.Spec()
	want := "seed=7 topo=raft steps=6 | disk@1 s2 x1 until=4; asym@2 s3>s1 x2; churn@3 s2"
	if spec != want {
		t.Fatalf("spec = %q, want %q", spec, want)
	}
	got, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Spec() != spec {
		t.Fatalf("round trip: %q != %q", got.Spec(), spec)
	}
	// Events survive structurally, not just textually.
	s.Class = "replay" // Parse cannot know the generator class
	// Churn events carry Scale 1 implicitly on the wire.
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("events after round trip:\n got %+v\nwant %+v", got.Events, s.Events)
	}
}

func TestSpecRoundTripCorrelatedAndScale(t *testing.T) {
	s := Schedule{
		Seed: 3, Topo: TopoShard, Steps: 8, Class: "correlated",
		Events: []Event{
			{Step: 0, Kind: FaultNet, Nodes: []string{"s4", "s6"}, Scale: 0.5, Until: 3},
		},
	}
	got, err := Parse(s.Spec())
	if err != nil {
		t.Fatalf("Parse(%q): %v", s.Spec(), err)
	}
	if got.Topo != TopoShard || got.Spec() != s.Spec() {
		t.Fatalf("round trip: %q", got.Spec())
	}
	if len(got.Events[0].Nodes) != 2 || got.Events[0].Scale != 0.5 {
		t.Fatalf("correlated event mangled: %+v", got.Events[0])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                             // no steps
		"seed=1 topo=raft",                             // no steps
		"seed=1 topo=mesh steps=4",                     // unknown topo
		"seed=1 topo=raft steps=4 | warp@1 s1",         // unknown kind
		"seed=1 topo=raft steps=4 | disk@9 s1",         // step out of range
		"seed=1 topo=raft steps=4 | asym@1 s1",         // asym without peer
		"seed=1 topo=raft steps=4 | disk@2 s1 until=1", // until before step
		"seed=1 topo=raft steps=4 | disk@1 s1 x0",      // zero scale
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Schedule{Steps: 4, Events: []Event{{Step: 1, Kind: FaultCPU, Nodes: []string{"s1"}, Scale: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []Schedule{
		{Steps: 0},
		{Steps: 4, Events: []Event{{Step: 4, Kind: FaultCPU, Nodes: []string{"s1"}}}},
		{Steps: 4, Events: []Event{{Step: 1, Until: 1, Kind: FaultCPU, Nodes: []string{"s1"}}}},
		{Steps: 4, Events: []Event{{Step: 1, Kind: FaultCPU}}},
		{Steps: 4, Events: []Event{{Step: 1, Kind: FaultAsym, Nodes: []string{"s1"}}}},
		{Steps: 4, Topo: TopoShard, Events: []Event{{Step: 1, Kind: FaultChurn, Nodes: []string{"s1"}}}},
		{Steps: 4, Events: []Event{
			{Step: 1, Kind: FaultChurn, Nodes: []string{"s1"}},
			{Step: 2, Kind: FaultChurn, Nodes: []string{"s2"}},
		}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestFaultedNodes(t *testing.T) {
	s := Schedule{Steps: 4, Events: []Event{
		{Step: 0, Kind: FaultDisk, Nodes: []string{"s3", "s1"}},
		{Step: 1, Kind: FaultAsym, Nodes: []string{"s3"}, Peer: "s2"},
	}}
	got := s.FaultedNodes()
	if !reflect.DeepEqual(got, []string{"s1", "s3"}) {
		t.Fatalf("FaultedNodes = %v", got)
	}
}

func TestGeneratorDeterministicAndDistinct(t *testing.T) {
	a, b := NewGenerator(11, 6), NewGenerator(11, 6)
	other := NewGenerator(12, 6)
	differs := false
	for i := 0; i < 50; i++ {
		sa, sb := a.Schedule(i), b.Schedule(i)
		if sa.Spec() != sb.Spec() {
			t.Fatalf("schedule %d not deterministic:\n%s\n%s", i, sa.Spec(), sb.Spec())
		}
		if sa.Spec() != other.Schedule(i).Spec() {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical schedule streams")
	}
}

// TestGeneratorCoverage asserts the acceptance criterion directly: 50
// distinct schedules from a fixed seed are all valid, round-trip
// through their specs, and include at least one correlated-domain
// fault, one asymmetric-network fault, one churn-overlap, and one
// sharded-topology schedule.
func TestGeneratorCoverage(t *testing.T) {
	g := NewGenerator(1, 6)
	seen := map[string]bool{}
	byClass := map[string]int{}
	shard := 0
	for idx := 0; len(seen) < 50; idx++ {
		if idx > 500 {
			t.Fatalf("needed >500 indices for 50 distinct schedules (%d found)", len(seen))
		}
		s := g.Schedule(idx)
		spec := s.Spec()
		if seen[spec] {
			continue
		}
		seen[spec] = true
		if err := s.Validate(); err != nil {
			t.Fatalf("schedule %d invalid: %v\n%s", idx, err, spec)
		}
		back, err := Parse(spec)
		if err != nil || back.Spec() != spec {
			t.Fatalf("schedule %d spec not replayable: %v\n%s", idx, err, spec)
		}
		byClass[s.Class]++
		if s.Topo == TopoShard {
			shard++
		}
	}
	for _, class := range []string{"single", "correlated", "asym", "churn", "storm"} {
		if byClass[class] == 0 {
			t.Errorf("50-schedule budget never produced class %q (%v)", class, byClass)
		}
	}
	if shard == 0 {
		t.Error("50-schedule budget never targeted the sharded topology")
	}
}

// TestShrinkMinimal drives the shrinker with a synthetic failure
// predicate ("any disk fault touching s2") and asserts it reaches the
// true minimum: one event, one node, a one-step window, no trailing
// dead steps.
func TestShrinkMinimal(t *testing.T) {
	s := Schedule{
		Seed: 9, Topo: TopoRaft, Steps: 6, Class: "storm",
		Events: []Event{
			{Step: 0, Kind: FaultCPU, Nodes: []string{"s1"}, Scale: 2, Until: 3},
			{Step: 1, Kind: FaultDisk, Nodes: []string{"s1", "s2"}, Scale: 1},
			{Step: 4, Kind: FaultNet, Nodes: []string{"s3"}, Scale: 0.5, Until: 5},
		},
	}
	calls := 0
	fails := func(c Schedule) bool {
		calls++
		for _, ev := range c.Events {
			if ev.Kind != FaultDisk {
				continue
			}
			for _, n := range ev.Nodes {
				if n == "s2" {
					return true
				}
			}
		}
		return false
	}
	min := Shrink(s, fails)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk schedule invalid: %v", err)
	}
	if len(min.Events) != 1 {
		t.Fatalf("shrunk to %d events, want 1: %s", len(min.Events), min.Spec())
	}
	ev := min.Events[0]
	if ev.Kind != FaultDisk || len(ev.Nodes) != 1 || ev.Nodes[0] != "s2" {
		t.Fatalf("shrunk event wrong: %+v", ev)
	}
	if ev.Until != ev.Step+1 {
		t.Fatalf("window not minimal: step=%d until=%d", ev.Step, ev.Until)
	}
	if min.Steps > ev.Until+2 {
		t.Fatalf("trailing steps not cut: steps=%d until=%d", min.Steps, ev.Until)
	}
	if calls == 0 || calls > 200 {
		t.Fatalf("shrinker made %d probe runs", calls)
	}
}

// TestShrinkKeepsFailingSchedule checks the contract that Shrink never
// returns a passing schedule: if nothing can be reduced, the input
// comes back unchanged.
func TestShrinkKeepsFailingSchedule(t *testing.T) {
	s := Schedule{
		Seed: 1, Topo: TopoRaft, Steps: 3, Class: "single",
		Events: []Event{{Step: 0, Kind: FaultMem, Nodes: []string{"s1"}, Scale: 1, Until: 1}},
	}
	onlyExact := func(c Schedule) bool { return c.Spec() == s.Spec() }
	if got := Shrink(s, onlyExact); got.Spec() != s.Spec() {
		t.Fatalf("irreducible schedule changed: %s", got.Spec())
	}
}
