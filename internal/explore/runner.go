package explore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"depfast/internal/clock"
	"depfast/internal/core"
	"depfast/internal/env"
	"depfast/internal/failslow"
	"depfast/internal/harness"
	"depfast/internal/obs"
	"depfast/internal/raft"
	"depfast/internal/rpc"
	"depfast/internal/shard"
	"depfast/internal/transport"
)

// RunnerConfig parameterizes how one schedule is executed.
type RunnerConfig struct {
	// StepDur is the wall-clock length of one logical step.
	StepDur time.Duration
	// AuditClients is the register-key client population whose
	// operation history feeds the linearizability check.
	AuditClients int
	// Keys is the register-key count the audit clients contend on.
	Keys int
	// Intensity is the base Table 1 fault intensity (event Scale
	// multiplies it).
	Intensity failslow.Intensity
	// ConvergeWait bounds the post-run wait for a terminal healthy
	// configuration; ChurnWait bounds the membership-change pipeline.
	ConvergeWait time.Duration
	ChurnWait    time.Duration
	// LinBudget caps linearizability-search states (0 = default).
	LinBudget int
	// Broken swaps in a deliberately mis-tuned sentinel (hair-trigger
	// quarantine, hysteresis disabled, condemnation without
	// replacement) — the self-test target the explorer must catch.
	Broken bool
	// Recorder receives schedule/verdict/violation events plus the
	// whole cluster timeline. May be nil.
	Recorder *obs.Recorder
}

// WithDefaults fills zero fields with the CI-smoke scale.
func (c RunnerConfig) WithDefaults() RunnerConfig {
	if c.StepDur <= 0 {
		c.StepDur = 80 * time.Millisecond
	}
	if c.AuditClients <= 0 {
		c.AuditClients = 3
	}
	if c.Keys <= 0 {
		c.Keys = 3
	}
	if c.Intensity == (failslow.Intensity{}) {
		c.Intensity = failslow.DefaultIntensity()
	}
	if c.ConvergeWait <= 0 {
		c.ConvergeWait = 10 * time.Second
	}
	if c.ChurnWait <= 0 {
		c.ChurnWait = 10 * time.Second
	}
	return c
}

// Verdict is the outcome of running one schedule: the invariant
// checks, their supporting numbers, and enough identity (the spec) to
// replay the run.
type Verdict struct {
	Schedule Schedule
	Spec     string
	Pass     bool
	// Failures lists every violated invariant, one line each.
	Failures []string

	Lin      harness.LinReport
	Acked    int // unique-key writes acknowledged to the auditor
	Lost     int // acked writes missing from final state machines
	Ops      int // audit operations recorded in the history
	Churned  bool
	Converge string // convergence summary (reason when failed)

	// Transitions tallies the sentinel state transitions this schedule
	// exercised (quarantine, rehab, handoff, condemn, replace) — the
	// explorer's coverage signal: a budget that never drives the
	// sentinel through a transition is not testing that transition.
	Transitions map[string]int

	Elapsed  time.Duration // whole run
	CheckDur time.Duration // invariant checking only (lin + audit)
}

// String renders a one-line verdict.
func (v Verdict) String() string {
	if v.Pass {
		return fmt.Sprintf("PASS %-10s ops=%-4d acked=%-4d states=%-6d %s",
			v.Schedule.Class, v.Ops, v.Acked, v.Lin.States, v.Spec)
	}
	return fmt.Sprintf("FAIL %-10s %s\n     %v", v.Schedule.Class, v.Spec, v.Failures)
}

// Run executes one schedule and checks the run invariants. The same
// spec always builds the same cluster, applies the same faults at the
// same steps, and checks the same invariants — the replay contract.
func Run(s Schedule, cfg RunnerConfig) (Verdict, error) {
	cfg = cfg.WithDefaults()
	if err := s.Validate(); err != nil {
		return Verdict{}, err
	}
	if cfg.Recorder == nil {
		// Transition coverage is read off the sentinel's event stream,
		// so a run always has a recorder even when the caller wants no
		// timeline of its own.
		cfg.Recorder = obs.NewRecorder(4096)
	}
	start := time.Now()
	cfg.Recorder.Emit(obs.Event{Type: obs.ScheduleStarted, Node: "explore", Detail: s.Spec()})
	var v Verdict
	var err error
	if s.Topo == TopoShard {
		v, err = runShard(s, cfg)
	} else {
		v, err = runRaft(s, cfg)
	}
	if err != nil {
		return v, err
	}
	v.Elapsed = time.Since(start)
	v.Pass = len(v.Failures) == 0
	v.Transitions = sentinelTransitions(cfg.Recorder.Events(), start)
	pass := 0.0
	if v.Pass {
		pass = 1
	}
	for _, f := range v.Failures {
		cfg.Recorder.Emit(obs.Event{Type: obs.InvariantViolated, Node: "explore", Detail: f})
	}
	cfg.Recorder.Emit(obs.Event{Type: obs.ScheduleVerdict, Node: "explore",
		Detail: v.Spec, Fields: map[string]float64{"pass": pass}})
	return v, nil
}

// TransitionKinds is the sentinel-transition coverage vocabulary, in
// escalation order.
var TransitionKinds = []string{"quarantine", "rehab", "handoff", "condemn", "replace"}

// sentinelTransitions tallies which sentinel transitions the recorded
// events show, keyed by the TransitionKinds vocabulary. Only events
// stamped at or after start count, so a recorder shared across a whole
// exploration budget attributes each transition to the schedule that
// caused it.
func sentinelTransitions(evs []obs.Event, start time.Time) map[string]int {
	out := map[string]int{}
	for _, ev := range evs {
		if ev.Time.Before(start) {
			continue
		}
		switch ev.Type {
		case obs.QuarantineEnter:
			out["quarantine"]++
		case obs.QuarantineExit:
			out["rehab"]++
		case obs.HandoffStarted:
			out["handoff"]++
		case obs.MemberRemoved:
			out["condemn"]++
		case obs.ReplacementCompleted:
			out["replace"]++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// quickRaftConfig is the sped-up server config schedules run under:
// fast elections and sentinel ticks so six 80ms steps see detection,
// mitigation, and rehabilitation — or, with Broken, the mis-tuned
// sentinel whose condemned peers are never released.
func quickRaftConfig(name string, peers []string, seed int64, cfg RunnerConfig, rec *obs.Recorder) raft.Config {
	rc := raft.DefaultConfig(name, peers)
	rc.ElectionTimeoutMin = 75 * time.Millisecond
	rc.ElectionTimeoutMax = 150 * time.Millisecond
	rc.HeartbeatInterval = 20 * time.Millisecond
	rc.Mitigation = true
	rc.Recorder = rec
	rc.Seed = seed
	rc.Mitigate.Interval = 10 * time.Millisecond
	if cfg.Broken {
		// Hysteresis off: quarantine on the first suspect tick, declare
		// rehabilitation after one healthy RTT, and condemn a peer
		// after 20ms of cumulative quarantine — with no AutoReplace, a
		// condemned peer is quarantined forever. (Zero values would be
		// re-defaulted by mitigate.Config.WithDefaults, hence the tiny
		// positive ones.)
		rc.Mitigate.QuarantineAfter = 1
		rc.Mitigate.RehabRTTs = 1
		rc.Mitigate.MinQuarantine = time.Nanosecond
		rc.Mitigate.SlowBudget = 20 * time.Millisecond
		rc.Mitigate.ReplaceAfterQuarantines = 1
	}
	return rc
}

// kindFault maps schedule vocabulary onto the Table 1 catalog.
func kindFault(k FaultKind) failslow.Fault {
	switch k {
	case FaultCPU:
		return failslow.CPUSlow
	case FaultDisk:
		return failslow.DiskSlow
	case FaultNet:
		return failslow.NetSlow
	case FaultMem:
		return failslow.MemContention
	}
	return failslow.None
}

// runRaft drives a schedule against a 3-replica raft group plus a
// standby spare (the churn target).
func runRaft(s Schedule, cfg RunnerConfig) (Verdict, error) {
	nodes := append([]string(nil), raftNodes...)
	const spare = "s4"
	rec := cfg.Recorder
	net := transport.NewNetwork()
	defer net.Close()

	envs := make(map[string]*env.Env)
	servers := make(map[string]*raft.Server)
	build := func(name string, peers []string, i int) {
		rc := quickRaftConfig(name, peers, s.Seed+int64(i)*7919, cfg, rec)
		e := env.New(name, env.DefaultConfig())
		srv := raft.NewServer(rc, e, net)
		net.Register(name, e, srv.TransportHandler())
		envs[name] = e
		servers[name] = srv
	}
	for i, name := range nodes {
		build(name, nodes, i)
	}
	// The spare idles with no peers until a churn joins it.
	build(spare, nil, len(nodes))
	for _, srv := range servers {
		srv.Start()
	}
	defer func() {
		for _, srv := range servers {
			srv.Stop()
		}
	}()

	if !clock.WaitUntil(10*time.Second, 5*time.Millisecond, func() bool {
		_, ok := raft.AgreedLeader(servers)
		return ok
	}) {
		return Verdict{}, fmt.Errorf("explore: no leader within 10s")
	}
	leader, _ := raft.AgreedLeader(servers)
	order := append([]string{leader}, othersOf(nodes, leader)...)

	aud := startAudit(net, s.Seed, cfg, func(ep *rpc.Endpoint, i int) dataClient {
		return raft.NewClient(uint64(5000+i), ep, order, 2*time.Second)
	})
	defer aud.close()

	script := failslow.NewScript(rec, cfg.Intensity)
	var churn *churnDriver
	runSteps(s, cfg, script, envs, func(ev Event) {
		if churn == nil {
			churn = startChurn(net, servers, spare, ev.Nodes[0], cfg, rec)
		}
	})

	script.ClearAll()
	aud.stopClients()
	v := Verdict{Schedule: s, Spec: s.Spec()}
	if churn != nil {
		v.Churned = churn.wait()
		churn.close()
	}

	conv := harness.WaitConvergence(servers, len(nodes), cfg.ConvergeWait)
	v.Converge = conv.String()
	if !conv.Converged {
		v.Failures = append(v.Failures, fmt.Sprintf("convergence: %s", conv.Reason))
	}

	checkStart := time.Now()
	hist, acked := aud.snapshot()
	v.Ops = len(hist)
	v.Acked = len(acked)
	v.Lin = harness.CheckLinearizable(hist, cfg.LinBudget)
	if v.Lin.Verdict == harness.LinViolation {
		v.Failures = append(v.Failures, fmt.Sprintf("linearizability: key %q has no valid linearization", v.Lin.Key))
	}
	if conv.Converged {
		finals := make([]*raft.Server, 0, len(conv.Voters))
		for _, name := range conv.Voters {
			if srv, ok := servers[name]; ok {
				finals = append(finals, srv)
			}
		}
		lost := harness.AuditAcked(finals, acked)
		v.Lost = len(lost)
		if v.Lost > 0 {
			v.Failures = append(v.Failures, fmt.Sprintf("acked-write loss: %d of %d acked keys missing (first: %s)",
				v.Lost, v.Acked, lost[0]))
		}
	}
	v.CheckDur = time.Since(checkStart)
	return v, nil
}

// runShard drives a schedule against a 2×3 sharded deployment through
// the routing frontend, adding the blast-radius invariant: groups no
// event targeted must see zero sentinel activity.
func runShard(s Schedule, cfg RunnerConfig) (Verdict, error) {
	const groups, replicas = 2, 3
	rec := cfg.Recorder
	m := shard.NewMap(shard.NewRangePartitioner(groups, 600), replicas)
	net := transport.NewNetwork()
	defer net.Close()
	cluster := shard.NewCluster(shard.ClusterConfig{
		Map:      m,
		Seed:     func(g, i int) int64 { return s.Seed + int64(g)*104729 + int64(i)*7919 },
		Recorder: rec,
		RaftMutate: func(g int, rc *raft.Config) {
			*rc = quickRaftConfig(rc.ID, rc.Peers, rc.Seed, cfg, rec)
		},
	}, net)
	cluster.Start()
	defer cluster.Stop()

	if !clock.WaitUntil(10*time.Second, 5*time.Millisecond, func() bool {
		_, ok := cluster.Leaders()
		return ok
	}) {
		return Verdict{}, fmt.Errorf("explore: not all %d groups elected a leader within 10s", groups)
	}

	envs := make(map[string]*env.Env)
	for _, grp := range cluster.Groups() {
		for name, e := range grp.Envs {
			envs[name] = e
		}
	}

	aud := startAudit(net, s.Seed, cfg, func(ep *rpc.Endpoint, i int) dataClient {
		return shard.NewRouter(m, ep, 2*time.Second)
	})
	defer aud.close()

	script := failslow.NewScript(rec, cfg.Intensity)
	runSteps(s, cfg, script, envs, nil)
	script.ClearAll()
	aud.stopClients()

	v := Verdict{Schedule: s, Spec: s.Spec()}
	for _, grp := range cluster.Groups() {
		conv := harness.WaitConvergence(grp.Servers, replicas, cfg.ConvergeWait)
		if v.Converge != "" {
			v.Converge += "; "
		}
		v.Converge += fmt.Sprintf("%s: %s", grp.ID, conv)
		if !conv.Converged {
			v.Failures = append(v.Failures, fmt.Sprintf("convergence(%s): %s", grp.ID, conv.Reason))
		}
	}

	// Blast radius: every sentinel action must stay inside the faulted
	// groups.
	faulted := make(map[int]bool)
	for _, n := range s.FaultedNodes() {
		faulted[m.GroupOf(n)] = true
	}
	for _, ev := range s.Events {
		if ev.Kind == FaultAsym {
			// The slow *path* implicates the receiver's group too: its
			// leader legitimately observes slow RTTs from the source.
			faulted[m.GroupOf(ev.Peer)] = true
		}
	}
	for g, grp := range cluster.Groups() {
		if faulted[g] {
			continue
		}
		var actions int64
		for _, srv := range grp.Servers {
			actions += srv.Mitigation.QuarantinesEntered.Value() + srv.Mitigation.Transfers.Value()
		}
		if actions > 0 {
			v.Failures = append(v.Failures, fmt.Sprintf("containment: %d sentinel actions in untargeted %s", actions, grp.ID))
		}
	}

	checkStart := time.Now()
	hist, acked := aud.snapshot()
	v.Ops = len(hist)
	v.Acked = len(acked)
	v.Lin = harness.CheckLinearizable(hist, cfg.LinBudget)
	if v.Lin.Verdict == harness.LinViolation {
		v.Failures = append(v.Failures, fmt.Sprintf("linearizability: key %q has no valid linearization", v.Lin.Key))
	}
	// Each acked key is audited against its owning group's replicas.
	lost := 0
	var first string
	for _, key := range acked {
		grp := cluster.GroupFor(key)
		finals := make([]*raft.Server, 0, replicas)
		for _, srv := range grp.Servers {
			finals = append(finals, srv)
		}
		if missing := harness.AuditAcked(finals, []string{key}); len(missing) > 0 {
			if lost == 0 {
				first = key
			}
			lost++
		}
	}
	v.Lost = lost
	if lost > 0 {
		v.Failures = append(v.Failures, fmt.Sprintf("acked-write loss: %d of %d acked keys missing (first: %s)",
			lost, len(acked), first))
	}
	v.CheckDur = time.Since(checkStart)
	return v, nil
}

// runSteps walks the schedule's logical clock: at each step it first
// clears events whose window ends there, then injects events starting
// there, then lets the cluster run for StepDur. onChurn handles
// FaultChurn events (nil when the topology has no spare).
func runSteps(s Schedule, cfg RunnerConfig, script *failslow.Script, envs map[string]*env.Env, onChurn func(Event)) {
	for step := 0; step < s.Steps; step++ {
		for _, ev := range s.Events {
			if ev.Until == step && ev.Until > 0 {
				for _, n := range ev.Nodes {
					if e := envs[n]; e != nil {
						script.Clear(e)
					}
				}
			}
		}
		for _, ev := range s.Events {
			if ev.Step != step {
				continue
			}
			switch ev.Kind {
			case FaultChurn:
				if onChurn != nil {
					onChurn(ev)
				}
			case FaultAsym:
				for _, n := range ev.Nodes {
					if e := envs[n]; e != nil {
						script.InjectAsym(e, ev.Peer, ev.Scale)
					}
				}
			default:
				for _, n := range ev.Nodes {
					if e := envs[n]; e != nil {
						script.Inject(e, kindFault(ev.Kind), ev.Scale)
					}
				}
			}
		}
		clock.Precise(cfg.StepDur)
	}
}

func othersOf(names []string, skip string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != skip {
			out = append(out, n)
		}
	}
	return out
}

// dataClient is the operation surface the audit population drives —
// satisfied by both raft.Client and shard.Router, so the same audit
// code covers both topologies.
type dataClient interface {
	Put(co *core.Coroutine, key string, value []byte) error
	Get(co *core.Coroutine, key string) ([]byte, bool, error)
	CAS(co *core.Coroutine, key string, expect, value []byte) (bool, []byte, error)
}

// auditors is the audit population: AuditClients register-key clients
// whose every operation (including errored "maybe" ones) lands in the
// shared history, plus one unique-key writer whose acknowledged keys
// feed the write-loss audit.
type auditors struct {
	rts []*core.Runtime
	eps []*rpc.Endpoint

	mu    sync.Mutex
	hist  []harness.HOp
	acked []string

	stopFlag atomic.Bool
	wg       sync.WaitGroup
}

// record appends one completed operation to the history.
func (a *auditors) record(op harness.HOp) {
	a.mu.Lock()
	a.hist = append(a.hist, op)
	a.mu.Unlock()
}

// snapshot returns copies of the history and acked-key list.
func (a *auditors) snapshot() ([]harness.HOp, []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hist := make([]harness.HOp, len(a.hist))
	copy(hist, a.hist)
	acked := make([]string, len(a.acked))
	copy(acked, a.acked)
	sort.SliceStable(hist, func(i, j int) bool { return hist[i].Call.Before(hist[j].Call) })
	return hist, acked
}

// startAudit launches the population; mkClient builds the per-client
// data-plane frontend (a raft client or a shard router).
func startAudit(net *transport.Network, seed int64, cfg RunnerConfig, mkClient func(ep *rpc.Endpoint, i int) dataClient) *auditors {
	a := &auditors{}
	spawn := func(i int, body func(co *core.Coroutine, cl dataClient)) {
		name := fmt.Sprintf("audit-%d", i)
		rt := core.NewRuntime(name)
		ep := rpc.NewEndpoint(name, rt, net, rpc.WithCallTimeout(2*time.Second))
		net.Register(name, env.New(name, env.DefaultConfig()), ep.TransportHandler())
		a.rts = append(a.rts, rt)
		a.eps = append(a.eps, ep)
		cl := mkClient(ep, i)
		a.wg.Add(1)
		rt.Spawn(name, func(co *core.Coroutine) {
			defer a.wg.Done()
			body(co, cl)
		})
	}
	for i := 0; i < cfg.AuditClients; i++ {
		ci := i
		spawn(ci, func(co *core.Coroutine, cl dataClient) {
			a.registerClient(co, cl, ci, seed, cfg)
		})
	}
	// The unique-key writer: every acked key must survive to the end.
	spawn(cfg.AuditClients, func(co *core.Coroutine, cl dataClient) {
		for i := 0; !a.stopFlag.Load(); i++ {
			key := fmt.Sprintf("u-%06d", i)
			if err := cl.Put(co, key, []byte{byte(i), byte(i >> 8)}); err == nil {
				a.mu.Lock()
				a.acked = append(a.acked, key)
				a.mu.Unlock()
			}
		}
	})
	return a
}

// registerClient hammers the shared register keys with a put/get/CAS
// mix, recording every operation's invocation window and observed
// outcome. CAS preconditions come from the client's last observation
// of the key, so concurrent clients genuinely race.
func (a *auditors) registerClient(co *core.Coroutine, cl dataClient, ci int, seed int64, cfg RunnerConfig) {
	rng := rand.New(rand.NewSource(seed*31 + int64(ci)))
	lastSeen := make(map[string]string)
	for i := 0; !a.stopFlag.Load(); i++ {
		key := fmt.Sprintf("reg%d", rng.Intn(cfg.Keys))
		val := fmt.Sprintf("c%d-%d", ci, i)
		op := harness.HOp{Client: fmt.Sprintf("audit-%d", ci), Key: key, Call: time.Now()}
		switch r := rng.Float64(); {
		case r < 0.4:
			op.Kind = harness.HPut
			op.Value = []byte(val)
			err := cl.Put(co, key, op.Value)
			op.Maybe = err != nil
			if err == nil {
				lastSeen[key] = val
			}
		case r < 0.7:
			op.Kind = harness.HGet
			v, found, err := cl.Get(co, key)
			op.OutFound, op.OutValue, op.Maybe = found, v, err != nil
			if err == nil && found {
				lastSeen[key] = string(v)
			}
		default:
			op.Kind = harness.HCAS
			op.Expect = []byte(lastSeen[key])
			op.Value = []byte(val)
			ok, prev, err := cl.CAS(co, key, op.Expect, op.Value)
			op.OutFound, op.Maybe = ok, err != nil
			if err == nil {
				if ok {
					lastSeen[key] = val
				} else {
					op.OutValue = prev
					lastSeen[key] = string(prev)
				}
			}
		}
		op.Return = time.Now()
		a.record(op)
	}
}

// stopClients winds the population down, waiting briefly for in-flight
// operations so their outcomes land in the history.
func (a *auditors) stopClients() {
	a.stopFlag.Store(true)
	done := make(chan struct{})
	go func() { a.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
}

// close tears down the audit runtimes and endpoints.
func (a *auditors) close() {
	a.stopFlag.Store(true)
	for i := range a.rts {
		a.eps[i].Close()
		a.rts[i].Stop()
	}
}

// churnDriver runs the membership change of a FaultChurn event in the
// background while the schedule keeps stepping: remove the victim,
// join the spare as a learner, promote it once caught up — all while
// whatever faults the schedule holds are still active.
type churnDriver struct {
	rt   *core.Runtime
	ep   *rpc.Endpoint
	done chan bool
}

func startChurn(net *transport.Network, servers map[string]*raft.Server, spare, victim string, cfg RunnerConfig, rec *obs.Recorder) *churnDriver {
	d := &churnDriver{done: make(chan bool, 1)}
	const name = "churn-admin"
	d.rt = core.NewRuntime(name)
	d.ep = rpc.NewEndpoint(name, d.rt, net, rpc.WithCallTimeout(2*time.Second))
	net.Register(name, env.New(name, env.DefaultConfig()), d.ep.TransportHandler())
	d.rt.Spawn("churn", func(co *core.Coroutine) {
		//depfast:allow deadline-propagation single send into the driver's 1-buffered done channel: cannot block
		d.done <- d.run(co, servers, spare, victim, cfg.ChurnWait)
	})
	return d
}

// run drives remove → add-learner → promote with per-stage retries
// until the deadline; each stage re-discovers the leader so handoffs
// and elections mid-churn only cost a retry.
func (d *churnDriver) run(co *core.Coroutine, servers map[string]*raft.Server, spare, victim string, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	change := func(kind uint64, pick func(leader string) string) bool {
		for time.Now().Before(deadline) {
			leader, ok := raft.AgreedLeader(servers)
			if !ok {
				if co.Sleep(30*time.Millisecond) != nil {
					return false
				}
				continue
			}
			node := pick(leader)
			ev := d.ep.Call(leader, &raft.MemberChange{Kind: kind, Node: node})
			if co.WaitFor(ev, 2*time.Second) == core.WaitReady && ev.Err() == nil {
				if r, _ := ev.Value().(*raft.MemberChangeReply); r != nil && r.OK {
					return true
				}
			}
			if co.Sleep(30*time.Millisecond) != nil {
				return false
			}
		}
		return false
	}
	// Removing the leader itself is refused, so a victim holding the
	// lease is re-targeted to another voter at each attempt.
	removed := ""
	okRemove := change(raft.ConfRemove, func(leader string) string {
		v := victim
		if v == leader {
			voters, _ := servers[leader].Members()
			for _, cand := range voters {
				if cand != leader && cand != spare {
					v = cand
					break
				}
			}
		}
		removed = v
		return v
	})
	_ = removed
	if !okRemove {
		return false
	}
	if !change(raft.ConfAddLearner, func(string) string { return spare }) {
		return false
	}
	return change(raft.ConfPromote, func(string) string { return spare })
}

// wait blocks for the churn outcome (the driver enforces its own
// deadline).
func (d *churnDriver) wait() bool { return <-d.done }

// close tears down the admin runtime.
func (d *churnDriver) close() {
	d.ep.Close()
	d.rt.Stop()
}
