package explore

import (
	"fmt"
	"strings"
	"time"
)

// Report is the outcome of one exploration budget: every distinct
// schedule's verdict plus aggregate timing for benchmarking.
type Report struct {
	Seed     int64
	Budget   int
	Verdicts []Verdict

	// ByClass counts explored schedules per scenario class.
	ByClass map[string]int
	// Coverage sums the sentinel transitions the whole budget
	// exercised, keyed by TransitionKinds — a budget whose coverage
	// shows condemn=0 never tested condemnation, however many
	// schedules it ran.
	Coverage map[string]int
	// Failures holds the failing verdicts (subset of Verdicts).
	Failures []Verdict

	Elapsed  time.Duration
	CheckDur time.Duration // summed invariant-check time
}

// Passed reports whether every explored schedule held the invariants.
func (r Report) Passed() bool { return len(r.Failures) == 0 }

// SchedulesPerSec is the exploration throughput.
func (r Report) SchedulesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Verdicts)) / r.Elapsed.Seconds()
}

// String renders a multi-line text report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d schedules (seed=%d) in %s — %d failed\n",
		len(r.Verdicts), r.Seed, r.Elapsed.Round(time.Millisecond), len(r.Failures))
	for _, class := range classes {
		if n := r.ByClass[class]; n > 0 {
			fmt.Fprintf(&b, "  %-10s %d\n", class, n)
		}
	}
	b.WriteString("  sentinel transitions exercised:")
	for _, kind := range TransitionKinds {
		fmt.Fprintf(&b, " %s=%d", kind, r.Coverage[kind])
	}
	b.WriteByte('\n')
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "%s\n", v)
	}
	return b.String()
}

// Explore runs budget distinct schedules generated from cfg-independent
// seed enumeration, checking invariants after each. Duplicate specs
// (the generator can collide on small step counts) are skipped, so the
// budget counts distinct scenarios. onVerdict, when non-nil, observes
// each verdict as it lands (progress reporting).
func Explore(seed int64, budget, steps int, cfg RunnerConfig, onVerdict func(int, Verdict)) (Report, error) {
	g := NewGenerator(seed, steps)
	rep := Report{Seed: seed, Budget: budget, ByClass: map[string]int{}, Coverage: map[string]int{}}
	start := time.Now()
	seen := map[string]bool{}
	for idx := 0; len(rep.Verdicts) < budget; idx++ {
		s := g.Schedule(idx)
		spec := s.Spec()
		if seen[spec] {
			continue
		}
		seen[spec] = true
		v, err := Run(s, cfg)
		if err != nil {
			return rep, fmt.Errorf("schedule %d (%s): %w", idx, spec, err)
		}
		rep.Verdicts = append(rep.Verdicts, v)
		rep.ByClass[s.Class]++
		for kind, n := range v.Transitions {
			rep.Coverage[kind] += n
		}
		rep.CheckDur += v.CheckDur
		if !v.Pass {
			rep.Failures = append(rep.Failures, v)
		}
		if onVerdict != nil {
			onVerdict(len(rep.Verdicts)-1, v)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// ShrinkFailure re-runs reductions of a failing schedule until minimal
// and returns the shrunk schedule plus its verdict. A schedule whose
// failure does not reproduce on re-run is returned unchanged with
// ok=false — flaky failures must not be "shrunk" into noise. A
// reduction is accepted only when it fails twice in a row: greedy
// shrinking toward a minimal window would otherwise happily settle on
// a repro so marginal it fires every other run, and the whole point of
// the shrunk spec is that replaying it reproduces the failure.
func ShrinkFailure(s Schedule, cfg RunnerConfig) (Schedule, Verdict, bool) {
	failsOnce := func(c Schedule) bool {
		v, err := Run(c, cfg)
		return err == nil && !v.Pass
	}
	fails := func(c Schedule) bool {
		return failsOnce(c) && failsOnce(c)
	}
	if !fails(s) {
		v, _ := Run(s, cfg)
		return s, v, false
	}
	min := Shrink(s, fails)
	v, err := Run(min, cfg)
	if err != nil || v.Pass {
		// The fixpoint run raced into a pass; re-verify once more and
		// fall back to the original failure if it will not stick.
		v2, err2 := Run(min, cfg)
		if err2 != nil || v2.Pass {
			v3, _ := Run(s, cfg)
			return s, v3, true
		}
		v = v2
	}
	return min, v, true
}
