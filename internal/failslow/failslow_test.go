package failslow

import (
	"strings"
	"testing"
	"time"

	"depfast/internal/env"
)

func newEnv() *env.Env { return env.New("s2", env.DefaultConfig()) }

func TestFaultNames(t *testing.T) {
	for _, f := range All {
		if s := f.String(); s == "" || strings.HasPrefix(s, "Fault(") {
			t.Errorf("fault %d has no name", int(f))
		}
		if f.Injection() == "unknown" {
			t.Errorf("fault %v has no injection description", f)
		}
	}
	if Fault(99).String() != "Fault(99)" {
		t.Error("unknown fault string")
	}
}

func TestAllIncludesBaselinePlusInjected(t *testing.T) {
	if len(All) != len(Injected)+1 {
		t.Fatalf("All=%d Injected=%d", len(All), len(Injected))
	}
	if All[0] != None {
		t.Fatal("All must start with the healthy baseline")
	}
}

func TestApplyCPUSlow(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	Apply(e, CPUSlow, in)
	healthy := time.Millisecond
	got := e.ComputeCost(healthy)
	if got != time.Duration(float64(healthy)*in.CPUSlowFactor) {
		t.Fatalf("cpu-slow compute = %v", got)
	}
	// Disk and net must be untouched.
	if e.NetDelay() != env.DefaultConfig().NetBase {
		t.Error("cpu fault leaked into net")
	}
}

func TestApplyDiskSlow(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	healthy := e.DiskWriteCost(1000)
	Apply(e, DiskSlow, in)
	got := e.DiskWriteCost(1000)
	ratio := float64(got) / float64(healthy)
	if ratio < in.DiskSlowFactor*0.9 || ratio > in.DiskSlowFactor*1.1 {
		t.Fatalf("disk-slow ratio = %.1f, want ~%.0f", ratio, in.DiskSlowFactor)
	}
}

func TestApplyNetSlow(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	Apply(e, NetSlow, in)
	if got := e.NetDelay(); got < in.NetDelay {
		t.Fatalf("net delay = %v, want >= %v", got, in.NetDelay)
	}
}

func TestApplyMemContention(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	in.MemStallP = 0 // isolate the resident-proportional pause
	Apply(e, MemContention, in)
	e.TrackAlloc(100 << 20) // 100 MB resident
	if got := e.ComputeCost(0); got != 100*in.MemPausePerMB {
		t.Fatalf("mem pause = %v, want %v", got, 100*in.MemPausePerMB)
	}
}

func TestApplyMemContentionStalls(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	in.MemStallP = 1.0 // always stall
	Apply(e, MemContention, in)
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond+in.MemStallDur {
		t.Fatalf("mem stall cost = %v", got)
	}
}

func TestApplyClearsPreviousFault(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	Apply(e, CPUSlow, in)
	Apply(e, NetSlow, in)
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("previous CPU fault not cleared: %v", got)
	}
}

func TestApplyNoneIsHealthy(t *testing.T) {
	e := newEnv()
	Apply(e, CPUSlow, DefaultIntensity())
	Apply(e, None, DefaultIntensity())
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("None not healthy: %v", got)
	}
}

func TestClear(t *testing.T) {
	e := newEnv()
	Apply(e, DiskSlow, DefaultIntensity())
	Clear(e)
	healthy := env.New("x", env.DefaultConfig()).DiskWriteCost(100)
	if got := e.DiskWriteCost(100); got != healthy {
		t.Fatalf("clear failed: %v vs %v", got, healthy)
	}
}

func TestScheduleAppliesAndStops(t *testing.T) {
	e := newEnv()
	in := DefaultIntensity()
	stop := Schedule(in, []Step{
		{After: 5 * time.Millisecond, Target: e, Fault: CPUSlow},
		{After: 80 * time.Millisecond, Target: e, Fault: None},
	})
	defer stop()
	time.Sleep(40 * time.Millisecond)
	if got := e.ComputeCost(time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("fault not applied at t=40ms: %v", got)
	}
	time.Sleep(100 * time.Millisecond)
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("fault not cleared at t=140ms: %v", got)
	}
}

func TestScheduleStopCancelsPending(t *testing.T) {
	e := newEnv()
	stop := Schedule(DefaultIntensity(), []Step{
		{After: 50 * time.Millisecond, Target: e, Fault: CPUSlow},
	})
	stop()
	time.Sleep(70 * time.Millisecond)
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("cancelled step still applied: %v", got)
	}
}
