package failslow

import (
	"math/rand"
	"sync"
	"time"

	"depfast/internal/env"
	"depfast/internal/obs"
)

// RandomFaults drives transient fail-slow episodes from a simple
// stochastic model — the paper's §3.3 plan to "integrate probability
// models that consider transient fail-slow events". Episodes arrive
// per-target as a Poisson-ish process (exponential inter-arrival
// times) with exponential durations and a fault type drawn from a
// weighted set.
type RandomFaults struct {
	targets   []*env.Env
	intensity Intensity

	// MeanBetween and MeanDuration parameterize the exponential
	// inter-arrival and episode-length distributions.
	meanBetween  time.Duration
	meanDuration time.Duration
	faults       []Fault
	rng          *rand.Rand

	mu      sync.Mutex
	rec     *obs.Recorder
	active  map[*env.Env]activeEpisode
	history []Episode
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// Episode records one injected transient fault. End is the scheduled
// clearance while the episode runs and the actual clearance once it
// has been healed (including early heals from Stop).
type Episode struct {
	Target string
	Fault  Fault
	Start  time.Time
	End    time.Time
}

// activeEpisode tracks one running episode: its fault plus its index
// into the history, so an early clear can truncate the recorded End.
type activeEpisode struct {
	fault Fault
	idx   int
}

// NewRandomFaults builds a scheduler over targets. meanBetween is the
// expected quiet time per target between episodes; meanDuration the
// expected episode length.
func NewRandomFaults(targets []*env.Env, in Intensity, meanBetween, meanDuration time.Duration, seed int64) *RandomFaults {
	return &RandomFaults{
		targets:      targets,
		intensity:    in,
		meanBetween:  meanBetween,
		meanDuration: meanDuration,
		faults:       Injected,
		rng:          rand.New(rand.NewSource(seed)),
		active:       make(map[*env.Env]activeEpisode),
		stopCh:       make(chan struct{}),
		doneCh:       make(chan struct{}),
	}
}

// expDur draws an exponential duration with the given mean (clamped
// to [mean/10, mean*10] to avoid degenerate schedules).
func (r *RandomFaults) expDur(mean time.Duration) time.Duration {
	d := time.Duration(r.rng.ExpFloat64() * float64(mean))
	if d < mean/10 {
		d = mean / 10
	}
	if d > mean*10 {
		d = mean * 10
	}
	return d
}

// Start launches the episode loop. Stop must be called to end it.
func (r *RandomFaults) Start() {
	r.mu.Lock()
	already := r.started
	r.started = true
	r.mu.Unlock()
	if already {
		return
	}
	go r.loop()
}

func (r *RandomFaults) loop() {
	defer close(r.doneCh)
	timer := time.NewTimer(r.nextDelay())
	defer timer.Stop()
	for {
		select {
		case <-r.stopCh:
			r.clearAll()
			return
		case <-timer.C:
			r.step()
			timer.Reset(r.nextDelay())
		}
	}
}

// nextDelay spaces scheduler wake-ups: a fraction of the per-target
// inter-arrival time so multiple targets get fair chances.
func (r *RandomFaults) nextDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.targets)
	if n == 0 {
		n = 1
	}
	return r.expDur(r.meanBetween / time.Duration(n))
}

// step either starts an episode on an idle target or does nothing
// this round (the target may already be faulted). The bookkeeping
// happens in beginEpisode under the lock; the injection itself runs
// outside it.
func (r *RandomFaults) step() {
	target, fault, dur, rec, ok := r.beginEpisode()
	if !ok {
		return
	}
	ApplyObserved(rec, target, fault, r.intensity)
	time.AfterFunc(dur, func() {
		r.mu.Lock()
		if a, ok := r.active[target]; ok && a.fault == fault {
			r.history[a.idx].End = time.Now()
			delete(r.active, target)
			ClearObserved(r.rec, target)
		}
		r.mu.Unlock()
	})
}

// beginEpisode picks a target and, if it is idle, records the new
// episode under the lock, handing back what the injection needs.
func (r *RandomFaults) beginEpisode() (target *env.Env, fault Fault, dur time.Duration, rec *obs.Recorder, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	target = r.targets[r.rng.Intn(len(r.targets))]
	if _, busy := r.active[target]; busy {
		return
	}
	fault = r.faults[r.rng.Intn(len(r.faults))]
	dur = r.expDur(r.meanDuration)
	ep := Episode{Target: target.Node(), Fault: fault, Start: time.Now(), End: time.Now().Add(dur)}
	r.history = append(r.history, ep)
	r.active[target] = activeEpisode{fault: fault, idx: len(r.history) - 1}
	return target, fault, dur, r.rec, true
}

// clearAll heals every target, truncating the in-progress episodes'
// recorded End to the actual clearance instant — so a Stop mid-episode
// leaves neither a dangling injection on the recorder nor a phantom
// future End in the history, and MTTR analysis always sees the fault
// lift when it really did.
func (r *RandomFaults) clearAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for t, a := range r.active {
		r.history[a.idx].End = now
		ClearObserved(r.rec, t)
		delete(r.active, t)
	}
}

// Stop ends the schedule and heals all targets; blocks until the loop
// exits.
func (r *RandomFaults) Stop() {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if !started {
		return
	}
	select {
	case <-r.stopCh:
	default:
		close(r.stopCh)
	}
	<-r.doneCh
}

// SetRecorder attaches a flight recorder: every subsequent episode's
// injection and clearance are emitted as FaultInjected/FaultCleared
// events alongside the detections they provoke. Call before Start.
func (r *RandomFaults) SetRecorder(rec *obs.Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec = rec
}

// ExportHistory emits the episode history accumulated so far into rec
// with original episode timestamps — the after-the-fact path for runs
// that attached no recorder up front. Episodes still in progress get
// their injection event only.
func (r *RandomFaults) ExportHistory(rec *obs.Recorder) {
	now := time.Now()
	for _, ep := range r.History() {
		rec.Emit(obs.Event{Time: ep.Start, Type: obs.FaultInjected, Node: ep.Target,
			Detail: ep.Fault.String()})
		if !ep.End.After(now) {
			rec.Emit(obs.Event{Time: ep.End, Type: obs.FaultCleared, Node: ep.Target})
		}
	}
}

// History returns the injected episodes so far.
func (r *RandomFaults) History() []Episode {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Episode, len(r.history))
	copy(out, r.history)
	return out
}

// ActiveCount returns how many targets are currently faulted.
func (r *RandomFaults) ActiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}
