package failslow

import (
	"testing"
	"time"

	"depfast/internal/env"
	"depfast/internal/obs"
)

func TestScaleStretchesBeyondHealthy(t *testing.T) {
	in := DefaultIntensity()
	half := Scale(in, 0.5)
	// A 20x CPU fault at half scale is 1 + 19/2 = 10.5x, not 10x.
	if got := half.CPUSlowFactor; got != 10.5 {
		t.Errorf("CPUSlowFactor at x0.5 = %v, want 10.5", got)
	}
	if got := half.NetDelay; got != in.NetDelay/2 {
		t.Errorf("NetDelay at x0.5 = %v, want %v", got, in.NetDelay/2)
	}
	double := Scale(in, 2)
	if got := double.CPUSlowFactor; got != 39 {
		t.Errorf("CPUSlowFactor at x2 = %v, want 39", got)
	}
	// Probabilities clamp at 1.
	if got := Scale(in, 100).DiskStallProb; got != 1 {
		t.Errorf("DiskStallProb at x100 = %v, want 1", got)
	}
	// Identity and degenerate scales return the input untouched.
	if Scale(in, 1) != in || Scale(in, 0) != in || Scale(in, -3) != in {
		t.Error("Scale(1/0/negative) must be identity")
	}
}

func TestScriptInjectAndClear(t *testing.T) {
	rec := obs.NewRecorder(64)
	e := env.New("n1", env.DefaultConfig())
	s := NewScript(rec, DefaultIntensity())

	s.Inject(e, CPUSlow, 1)
	if got := e.ComputeCost(time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("cpu-slow compute = %v", got)
	}
	if s.Active() != 1 {
		t.Fatalf("active = %d, want 1", s.Active())
	}

	s.Clear(e)
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("compute after clear = %v", got)
	}
	if s.Active() != 0 {
		t.Fatalf("active after clear = %d", s.Active())
	}
	// Clearing an already-healthy node is a silent no-op.
	before := len(rec.Events())
	s.Clear(e)
	if len(rec.Events()) != before {
		t.Error("no-op Clear emitted an event")
	}

	var injected, cleared int
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.FaultInjected:
			injected++
		case obs.FaultCleared:
			cleared++
		}
	}
	if injected != 1 || cleared != 1 {
		t.Fatalf("recorder saw %d injections, %d clears; want 1/1", injected, cleared)
	}
}

func TestScriptInjectScales(t *testing.T) {
	e := env.New("n1", env.DefaultConfig())
	s := NewScript(nil, DefaultIntensity())
	s.Inject(e, CPUSlow, 2)
	// x2 of a 20x fault stretches to 39x.
	if got := e.ComputeCost(time.Millisecond); got != 39*time.Millisecond {
		t.Fatalf("scaled cpu-slow compute = %v", got)
	}
	s.ClearAll()
}

func TestScriptAsymSurvivesReinjection(t *testing.T) {
	rec := obs.NewRecorder(64)
	e := env.New("n1", env.DefaultConfig())
	s := NewScript(rec, DefaultIntensity())
	base := env.DefaultConfig().NetBase

	s.InjectAsym(e, "n2", 1)
	want := DefaultIntensity().NetDelay + base
	if got := e.NetDelayTo("n2"); got != want {
		t.Fatalf("one-way delay toward n2 = %v, want %v", got, want)
	}
	if got := e.NetDelayTo("n3"); got != base {
		t.Fatalf("delay toward n3 = %v, want baseline", got)
	}

	// A node-level fault on the same target must not wipe the one-way
	// delay (env.Apply clears all knobs; the Script re-establishes it).
	s.Inject(e, CPUSlow, 1)
	if got := e.NetDelayTo("n2"); got != want {
		t.Fatalf("one-way delay lost after node fault re-injection: %v", got)
	}
	if s.Active() != 1 {
		t.Fatalf("active = %d, want 1 (same node)", s.Active())
	}

	s.ClearAll()
	if got := e.NetDelayTo("n2"); got != base {
		t.Fatalf("one-way delay after ClearAll = %v, want baseline", got)
	}
	if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
		t.Fatalf("compute after ClearAll = %v", got)
	}
	if s.Active() != 0 {
		t.Fatalf("active after ClearAll = %d", s.Active())
	}

	// The asymmetric injection is on the recorder with its direction.
	var sawAsym bool
	for _, ev := range rec.Events() {
		if ev.Type == obs.FaultInjected && ev.Peer == "n2" {
			sawAsym = true
		}
	}
	if !sawAsym {
		t.Error("asymmetric injection missing from recorder")
	}
}

func TestScriptClearAllHealsEveryTarget(t *testing.T) {
	s := NewScript(nil, DefaultIntensity())
	a := env.New("a", env.DefaultConfig())
	b := env.New("b", env.DefaultConfig())
	s.Inject(a, DiskSlow, 1)
	s.InjectAsym(b, "a", 1)
	if s.Active() != 2 {
		t.Fatalf("active = %d, want 2", s.Active())
	}
	s.ClearAll()
	if got := a.DiskReadCost(0); got != env.DefaultConfig().DiskReadBase {
		t.Errorf("a not healed: %v", got)
	}
	if got := b.NetDelayTo("a"); got != env.DefaultConfig().NetBase {
		t.Errorf("b not healed: %v", got)
	}
}
