// Package failslow is the fault-injection tool of the reproduction:
// it implements the simulated fail-slow fault catalog of Table 1 of
// the paper (CPU slowness and contention, disk slowness and
// contention, memory contention, network slowness) and applies faults
// to node environments, optionally on a schedule.
package failslow

import (
	"fmt"
	"time"

	"depfast/internal/env"
	"depfast/internal/obs"
)

// Fault identifies one fail-slow fault type from Table 1.
type Fault int

const (
	// None is the healthy baseline ("No Slowness").
	None Fault = iota
	// CPUSlow models a cgroup cap allowing the process only ~5% CPU.
	CPUSlow
	// CPUContention models a contending program with 16x the CPU share.
	CPUContention
	// DiskSlow models a cgroup limit on disk I/O bandwidth.
	DiskSlow
	// DiskContention models a heavy contending writer on the shared disk.
	DiskContention
	// MemContention models a cgroup cap on user memory (reclaim cost
	// grows with resident set).
	MemContention
	// NetSlow models a tc netem delay added to the node's interface.
	NetSlow
)

// All lists every fault including the healthy baseline, in the order
// the paper's figures present them.
var All = []Fault{None, CPUSlow, CPUContention, MemContention, DiskSlow, DiskContention, NetSlow}

// Injected lists only the actual faults.
var Injected = []Fault{CPUSlow, CPUContention, MemContention, DiskSlow, DiskContention, NetSlow}

// String names the fault as in the paper's legends.
func (f Fault) String() string {
	switch f {
	case None:
		return "No Slowness"
	case CPUSlow:
		return "CPU Slowness"
	case CPUContention:
		return "CPU Contention"
	case DiskSlow:
		return "Disk Slowness"
	case DiskContention:
		return "Disk Contention"
	case MemContention:
		return "Memory Contention"
	case NetSlow:
		return "Network Slowness"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Injection describes how a fault is injected, mirroring the second
// column of Table 1.
func (f Fault) Injection() string {
	switch f {
	case None:
		return "baseline, no fault injected"
	case CPUSlow:
		return "limit the RSM process to ~5% CPU (cgroup cpu.max equivalent: compute x20)"
	case CPUContention:
		return "contending program with 16x CPU share (compute x4 + probabilistic stalls)"
	case DiskSlow:
		return "limit disk I/O bandwidth for the RSM process (disk service time x10)"
	case DiskContention:
		return "contending heavy writer on the shared disk (probabilistic multi-ms disk stalls)"
	case MemContention:
		return "cap user memory for the RSM process (reclaim pause per resident MB)"
	case NetSlow:
		return "add fixed delay to the network interface (tc netem equivalent)"
	}
	return "unknown"
}

// Intensity parameterizes the faults; the zero value is unusable —
// use DefaultIntensity (scaled for seconds-long laptop experiments) as
// a starting point.
type Intensity struct {
	CPUSlowFactor       float64
	CPUContentionFactor float64
	CPUStallProb        float64
	CPUStallDur         time.Duration
	DiskSlowFactor      float64
	DiskStallProb       float64
	DiskStallDur        time.Duration
	MemPausePerMB       time.Duration
	// Memory contention also causes reclaim stalls on the faulted
	// node's compute path, independent of tracked resident bytes.
	MemStallP   float64
	MemStallDur time.Duration
	NetDelay    time.Duration
}

// DefaultIntensity mirrors Table 1 scaled for short experiments: the
// paper's 400ms tc delay becomes 40ms so runs converge in seconds; the
// CPU cap (5% ≈ x20) and bandwidth throttle ratios are kept.
func DefaultIntensity() Intensity {
	return Intensity{
		CPUSlowFactor:       20,
		CPUContentionFactor: 4,
		CPUStallProb:        0.10,
		CPUStallDur:         5 * time.Millisecond,
		DiskSlowFactor:      10,
		DiskStallProb:       0.15,
		DiskStallDur:        4 * time.Millisecond,
		MemPausePerMB:       40 * time.Microsecond,
		MemStallP:           0.08,
		MemStallDur:         4 * time.Millisecond,
		NetDelay:            40 * time.Millisecond,
	}
}

// Apply injects fault f into e with the given intensity, after
// clearing any previous fault.
func Apply(e *env.Env, f Fault, in Intensity) {
	e.ClearFaults()
	switch f {
	case None:
	case CPUSlow:
		e.SetCPUFactor(in.CPUSlowFactor)
	case CPUContention:
		e.SetCPUFactor(in.CPUContentionFactor)
		e.SetCPUStall(in.CPUStallProb, in.CPUStallDur)
	case DiskSlow:
		e.SetDiskFactor(in.DiskSlowFactor)
	case DiskContention:
		e.SetDiskStall(in.DiskStallProb, in.DiskStallDur)
	case MemContention:
		e.SetMemPressure(in.MemPausePerMB)
		e.SetCPUStall(in.MemStallP, in.MemStallDur)
	case NetSlow:
		e.SetNetDelay(in.NetDelay)
	}
}

// Clear removes any injected fault from e.
func Clear(e *env.Env) { e.ClearFaults() }

// ApplyObserved is Apply plus a flight-recorder event, so the
// injection instant lands on the same timeline as detector verdicts
// and sentinel actions (rec may be nil). Injecting None records a
// clear, matching Apply's semantics.
func ApplyObserved(rec *obs.Recorder, e *env.Env, f Fault, in Intensity) {
	Apply(e, f, in)
	if f == None {
		rec.Emit(obs.Event{Type: obs.FaultCleared, Node: e.Node()})
		return
	}
	rec.Emit(obs.Event{Type: obs.FaultInjected, Node: e.Node(), Detail: f.String()})
}

// ClearObserved is Clear plus a flight-recorder event (rec may be nil).
func ClearObserved(rec *obs.Recorder, e *env.Env) {
	Clear(e)
	rec.Emit(obs.Event{Type: obs.FaultCleared, Node: e.Node()})
}

// Step is one timed action in an injection schedule.
type Step struct {
	After  time.Duration // offset from schedule start
	Target *env.Env
	Fault  Fault
}

// Schedule applies steps at their offsets relative to start and
// returns a stop function that cancels pending steps. Useful for
// transient-fault experiments (fault appears mid-run, then clears).
func Schedule(in Intensity, steps []Step) (stop func()) {
	timers := make([]*time.Timer, 0, len(steps))
	for _, s := range steps {
		s := s
		timers = append(timers, time.AfterFunc(s.After, func() {
			Apply(s.Target, s.Fault, in)
		}))
	}
	return func() {
		for _, t := range timers {
			t.Stop()
		}
	}
}
