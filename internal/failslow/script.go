package failslow

import (
	"fmt"
	"sync"
	"time"

	"depfast/internal/env"
	"depfast/internal/obs"
)

// Scale returns in with every fault knob multiplied by f: factors,
// stall probabilities (clamped to 1), stall durations, reclaim pauses,
// and the network delay. It is the intensity dial of schedule-driven
// injection — the same fault vocabulary at x0.5, x1, x2...
func Scale(in Intensity, f float64) Intensity {
	if f == 1 || f <= 0 {
		return in
	}
	scaleFactor := func(v float64) float64 {
		// A service-time factor of 1 is "healthy"; scale the stretch
		// beyond 1, not the whole multiplier, so x0.5 of a 20x fault is
		// 10.5x rather than a meaningless 10x-of-everything.
		if v <= 1 {
			return v
		}
		return 1 + (v-1)*f
	}
	prob := func(p float64) float64 {
		p *= f
		if p > 1 {
			p = 1
		}
		return p
	}
	in.CPUSlowFactor = scaleFactor(in.CPUSlowFactor)
	in.CPUContentionFactor = scaleFactor(in.CPUContentionFactor)
	in.CPUStallProb = prob(in.CPUStallProb)
	in.CPUStallDur = time.Duration(float64(in.CPUStallDur) * f)
	in.DiskSlowFactor = scaleFactor(in.DiskSlowFactor)
	in.DiskStallProb = prob(in.DiskStallProb)
	in.DiskStallDur = time.Duration(float64(in.DiskStallDur) * f)
	in.MemPausePerMB = time.Duration(float64(in.MemPausePerMB) * f)
	in.MemStallP = prob(in.MemStallP)
	in.MemStallDur = time.Duration(float64(in.MemStallDur) * f)
	in.NetDelay = time.Duration(float64(in.NetDelay) * f)
	return in
}

// Script is the schedule-driven injector: where RandomFaults draws
// episodes from a stochastic model on its own timers, a Script applies
// exactly the faults a driver tells it to, synchronously, when told —
// the deterministic backend a fault-schedule explorer replays the same
// scenario through run after run. It tracks what is active per node
// (including asymmetric one-way network delays, which survive a
// node-fault re-injection on the same target) so ClearAll always heals
// the whole deployment, and mirrors every action onto the flight
// recorder.
type Script struct {
	rec *obs.Recorder
	in  Intensity

	mu     sync.Mutex
	faults map[*env.Env]Fault
	asym   map[*env.Env]map[string]time.Duration
}

// NewScript returns an injector with base intensity in; rec may be nil.
func NewScript(rec *obs.Recorder, in Intensity) *Script {
	return &Script{
		rec:    rec,
		in:     in,
		faults: make(map[*env.Env]Fault),
		asym:   make(map[*env.Env]map[string]time.Duration),
	}
}

// Inject applies fault f to e at scale times the base intensity,
// replacing any node-level fault already active there. Asymmetric
// delays previously injected on e are re-established (env.Apply clears
// every knob first).
func (s *Script) Inject(e *env.Env, f Fault, scale float64) {
	s.mu.Lock()
	s.faults[e] = f
	asym := s.asym[e]
	s.mu.Unlock()

	ApplyObserved(s.rec, e, f, Scale(s.in, scale))
	for peer, d := range asym {
		e.SetNetDelayTo(peer, d)
	}
}

// InjectAsym adds a one-way network delay from e toward peer of scale
// times the base intensity's NetDelay.
func (s *Script) InjectAsym(e *env.Env, peer string, scale float64) {
	d := time.Duration(float64(s.in.NetDelay) * scale)
	s.mu.Lock()
	if s.asym[e] == nil {
		s.asym[e] = make(map[string]time.Duration)
	}
	s.asym[e][peer] = d
	s.mu.Unlock()

	e.SetNetDelayTo(peer, d)
	s.rec.Emit(obs.Event{Type: obs.FaultInjected, Node: e.Node(), Peer: peer,
		Detail: fmt.Sprintf("Asymmetric Network Slowness ->%s", peer)})
}

// Clear heals every fault on e — the node-level fault and any one-way
// delays — and records the clearance.
func (s *Script) Clear(e *env.Env) {
	s.mu.Lock()
	_, hadFault := s.faults[e]
	_, hadAsym := s.asym[e]
	delete(s.faults, e)
	delete(s.asym, e)
	s.mu.Unlock()

	if !hadFault && !hadAsym {
		return
	}
	ClearObserved(s.rec, e)
}

// ClearAll heals every target the script ever faulted.
func (s *Script) ClearAll() {
	s.mu.Lock()
	targets := make(map[*env.Env]bool, len(s.faults)+len(s.asym))
	for e := range s.faults {
		targets[e] = true
	}
	for e := range s.asym {
		targets[e] = true
	}
	s.faults = make(map[*env.Env]Fault)
	s.asym = make(map[*env.Env]map[string]time.Duration)
	s.mu.Unlock()

	for e := range targets {
		ClearObserved(s.rec, e)
	}
}

// Active returns how many nodes currently carry an injected fault or
// one-way delay.
func (s *Script) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.faults)
	for e := range s.asym {
		if _, dup := s.faults[e]; !dup {
			n++
		}
	}
	return n
}
