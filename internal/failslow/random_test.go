package failslow

import (
	"testing"
	"time"

	"depfast/internal/env"
	"depfast/internal/obs"
)

func TestRandomFaultsInjectsAndHeals(t *testing.T) {
	targets := []*env.Env{
		env.New("r1", env.DefaultConfig()),
		env.New("r2", env.DefaultConfig()),
	}
	rf := NewRandomFaults(targets, DefaultIntensity(),
		20*time.Millisecond, 30*time.Millisecond, 7)
	rf.Start()
	time.Sleep(300 * time.Millisecond)
	rf.Stop()

	eps := rf.History()
	if len(eps) == 0 {
		t.Fatal("no episodes injected in 300ms with 20ms mean inter-arrival")
	}
	for _, ep := range eps {
		if ep.Fault == None {
			t.Errorf("episode injected None: %+v", ep)
		}
		if ep.Target != "r1" && ep.Target != "r2" {
			t.Errorf("unknown target %q", ep.Target)
		}
		if !ep.End.After(ep.Start) {
			t.Errorf("non-positive episode duration: %+v", ep)
		}
	}
	// After Stop, all targets must be healed.
	if rf.ActiveCount() != 0 {
		t.Fatalf("active faults after stop: %d", rf.ActiveCount())
	}
	for _, e := range targets {
		if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
			t.Errorf("%s not healed: compute = %v", e.Node(), got)
		}
		if got := e.NetDelay(); got != env.DefaultConfig().NetBase {
			t.Errorf("%s not healed: net = %v", e.Node(), got)
		}
	}
}

func TestRandomFaultsDeterministicSeed(t *testing.T) {
	mk := func() []Episode {
		targets := []*env.Env{env.New("d1", env.DefaultConfig())}
		rf := NewRandomFaults(targets, DefaultIntensity(),
			10*time.Millisecond, 10*time.Millisecond, 42)
		rf.Start()
		time.Sleep(150 * time.Millisecond)
		rf.Stop()
		return rf.History()
	}
	a, b := mk(), mk()
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no episodes on this host; timing too coarse")
	}
	// Later draws depend on wall-clock busy checks, so only the first
	// episode is strictly reproducible across runs.
	if a[0].Fault != b[0].Fault || a[0].Target != b[0].Target {
		t.Fatalf("first episode differs: %v/%v vs %v/%v",
			a[0].Target, a[0].Fault, b[0].Target, b[0].Fault)
	}
}

func TestRandomFaultsStopIdempotent(t *testing.T) {
	rf := NewRandomFaults([]*env.Env{env.New("x", env.DefaultConfig())},
		DefaultIntensity(), time.Second, time.Second, 1)
	rf.Stop() // never started: no-op
	rf.Start()
	rf.Stop()
	rf.Stop()
}

func TestRandomFaultsStopTruncatesInFlightEpisodes(t *testing.T) {
	rec := obs.NewRecorder(128)
	targets := []*env.Env{env.New("t1", env.DefaultConfig())}
	// Episodes nominally last ~10s, far beyond the test window, so any
	// injected episode is still in flight when Stop heals it.
	rf := NewRandomFaults(targets, DefaultIntensity(),
		10*time.Millisecond, 10*time.Second, 3)
	rf.SetRecorder(rec)
	rf.Start()
	time.Sleep(120 * time.Millisecond)
	rf.Stop()
	now := time.Now()

	eps := rf.History()
	if len(eps) == 0 {
		t.Skip("no episodes on this host; timing too coarse")
	}
	for _, ep := range eps {
		if ep.End.After(now) {
			t.Errorf("episode End %v still in the future after Stop", ep.End)
		}
		if !ep.End.After(ep.Start) {
			t.Errorf("non-positive episode duration after truncation: %+v", ep)
		}
	}
	var injected, cleared int
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.FaultInjected:
			injected++
		case obs.FaultCleared:
			cleared++
		}
	}
	if injected == 0 || cleared == 0 {
		t.Fatalf("recorder saw %d injections, %d clears; want both > 0", injected, cleared)
	}
	if cleared < injected {
		t.Fatalf("dangling injections on recorder: %d injected vs %d cleared", injected, cleared)
	}
}

func TestRandomFaultsExportHistoryIncludesStopClears(t *testing.T) {
	targets := []*env.Env{env.New("e1", env.DefaultConfig())}
	rf := NewRandomFaults(targets, DefaultIntensity(),
		10*time.Millisecond, 10*time.Second, 5)
	rf.Start()
	time.Sleep(120 * time.Millisecond)
	rf.Stop()

	if len(rf.History()) == 0 {
		t.Skip("no episodes on this host; timing too coarse")
	}
	rec := obs.NewRecorder(128)
	rf.ExportHistory(rec)
	var injected, cleared int
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.FaultInjected:
			injected++
		case obs.FaultCleared:
			cleared++
		}
	}
	// Stop truncated every in-flight episode's End into the past, so the
	// export emits a clearance for each injection — MTTR analysis never
	// sees a fault that was healed but looks active.
	if injected == 0 {
		t.Fatal("export emitted no injections")
	}
	if cleared != injected {
		t.Fatalf("export: %d injections but %d clears", injected, cleared)
	}
}
