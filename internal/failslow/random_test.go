package failslow

import (
	"testing"
	"time"

	"depfast/internal/env"
)

func TestRandomFaultsInjectsAndHeals(t *testing.T) {
	targets := []*env.Env{
		env.New("r1", env.DefaultConfig()),
		env.New("r2", env.DefaultConfig()),
	}
	rf := NewRandomFaults(targets, DefaultIntensity(),
		20*time.Millisecond, 30*time.Millisecond, 7)
	rf.Start()
	time.Sleep(300 * time.Millisecond)
	rf.Stop()

	eps := rf.History()
	if len(eps) == 0 {
		t.Fatal("no episodes injected in 300ms with 20ms mean inter-arrival")
	}
	for _, ep := range eps {
		if ep.Fault == None {
			t.Errorf("episode injected None: %+v", ep)
		}
		if ep.Target != "r1" && ep.Target != "r2" {
			t.Errorf("unknown target %q", ep.Target)
		}
		if !ep.End.After(ep.Start) {
			t.Errorf("non-positive episode duration: %+v", ep)
		}
	}
	// After Stop, all targets must be healed.
	if rf.ActiveCount() != 0 {
		t.Fatalf("active faults after stop: %d", rf.ActiveCount())
	}
	for _, e := range targets {
		if got := e.ComputeCost(time.Millisecond); got != time.Millisecond {
			t.Errorf("%s not healed: compute = %v", e.Node(), got)
		}
		if got := e.NetDelay(); got != env.DefaultConfig().NetBase {
			t.Errorf("%s not healed: net = %v", e.Node(), got)
		}
	}
}

func TestRandomFaultsDeterministicSeed(t *testing.T) {
	mk := func() []Episode {
		targets := []*env.Env{env.New("d1", env.DefaultConfig())}
		rf := NewRandomFaults(targets, DefaultIntensity(),
			10*time.Millisecond, 10*time.Millisecond, 42)
		rf.Start()
		time.Sleep(150 * time.Millisecond)
		rf.Stop()
		return rf.History()
	}
	a, b := mk(), mk()
	if len(a) == 0 || len(b) == 0 {
		t.Skip("no episodes on this host; timing too coarse")
	}
	// Later draws depend on wall-clock busy checks, so only the first
	// episode is strictly reproducible across runs.
	if a[0].Fault != b[0].Fault || a[0].Target != b[0].Target {
		t.Fatalf("first episode differs: %v/%v vs %v/%v",
			a[0].Target, a[0].Fault, b[0].Target, b[0].Fault)
	}
}

func TestRandomFaultsStopIdempotent(t *testing.T) {
	rf := NewRandomFaults([]*env.Env{env.New("x", env.DefaultConfig())},
		DefaultIntensity(), time.Second, time.Second, 1)
	rf.Stop() // never started: no-op
	rf.Start()
	rf.Stop()
	rf.Stop()
}
