package kv

import (
	"bytes"
	"testing"
	"testing/quick"

	"depfast/internal/codec"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	if r := s.Apply(Command{Op: OpGet, Key: "a"}); r.Found {
		t.Fatal("get on empty store found something")
	}
	s.Apply(Command{Op: OpPut, Key: "a", Value: []byte("1")})
	r := s.Apply(Command{Op: OpGet, Key: "a"})
	if !r.Found || string(r.Value) != "1" {
		t.Fatalf("get = %+v", r)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStorePutCopiesValue(t *testing.T) {
	s := NewStore()
	v := []byte("orig")
	s.Apply(Command{Op: OpPut, Key: "k", Value: v})
	v[0] = 'X'
	r := s.Apply(Command{Op: OpGet, Key: "k"})
	if string(r.Value) != "orig" {
		t.Fatalf("store aliases caller buffer: %q", r.Value)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	s.Apply(Command{Op: OpPut, Key: "a", Value: []byte("1")})
	if r := s.Apply(Command{Op: OpDelete, Key: "a"}); !r.Found {
		t.Fatal("delete existing not found")
	}
	if r := s.Apply(Command{Op: OpDelete, Key: "a"}); r.Found {
		t.Fatal("double delete found")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStoreScan(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"d", "b", "a", "c", "e"} {
		s.Apply(Command{Op: OpPut, Key: k, Value: []byte(k)})
	}
	r := s.Apply(Command{Op: OpScan, Key: "b", ScanLen: 3})
	if len(r.Pairs) != 3 {
		t.Fatalf("scan = %+v", r.Pairs)
	}
	want := []string{"b", "c", "d"}
	for i, p := range r.Pairs {
		if p.Key != want[i] {
			t.Fatalf("scan order = %v", r.Pairs)
		}
	}
	// Scan reflects subsequent writes (cache invalidation).
	s.Apply(Command{Op: OpPut, Key: "bb", Value: []byte("x")})
	r = s.Apply(Command{Op: OpScan, Key: "b", ScanLen: 2})
	if r.Pairs[1].Key != "bb" {
		t.Fatalf("scan after insert = %v", r.Pairs)
	}
	// Scan past the end.
	r = s.Apply(Command{Op: OpScan, Key: "zzz", ScanLen: 5})
	if r.Found || len(r.Pairs) != 0 {
		t.Fatalf("scan past end = %+v", r)
	}
}

func TestCommandEncodeDecode(t *testing.T) {
	f := func(op uint8, key string, value []byte, scan uint8) bool {
		in := Command{Op: OpKind(op % 4), Key: key, Value: value, ScanLen: int(scan)}
		out, err := DecodeCommand(in.Encode())
		if err != nil {
			return false
		}
		return out.Op == in.Op && out.Key == in.Key &&
			bytes.Equal(out.Value, in.Value) && out.ScanLen == in.ScanLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCommandCorrupt(t *testing.T) {
	if _, err := DecodeCommand([]byte{0xff}); err == nil {
		t.Fatal("corrupt command decoded without error")
	}
}

func TestClientMessagesRoundTrip(t *testing.T) {
	req := &ClientRequest{
		ClientID: 7,
		Seq:      99,
		Cmd:      Command{Op: OpPut, Key: "k", Value: []byte("v")},
	}
	out, err := codec.Unmarshal(codec.Marshal(req))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*ClientRequest)
	if got.ClientID != 7 || got.Seq != 99 || got.Cmd.Key != "k" || string(got.Cmd.Value) != "v" {
		t.Fatalf("req = %+v", got)
	}

	resp := &ClientResponse{
		OK: true, Found: true, Value: []byte("v"),
		Pairs:      []Pair{{Key: "a", Value: []byte("1")}, {Key: "b", Value: nil}},
		LeaderHint: "s2",
	}
	out2, err := codec.Unmarshal(codec.Marshal(resp))
	if err != nil {
		t.Fatal(err)
	}
	got2 := out2.(*ClientResponse)
	if !got2.OK || !got2.Found || string(got2.Value) != "v" || len(got2.Pairs) != 2 ||
		got2.Pairs[0].Key != "a" || got2.LeaderHint != "s2" {
		t.Fatalf("resp = %+v", got2)
	}
}

func TestClientResponseNotLeader(t *testing.T) {
	resp := &ClientResponse{NotLeader: true, LeaderHint: "s3", Err: "not leader"}
	out, err := codec.Unmarshal(codec.Marshal(resp))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*ClientResponse)
	if !got.NotLeader || got.LeaderHint != "s3" || got.Err != "not leader" {
		t.Fatalf("resp = %+v", got)
	}
}

func TestSessionsExactlyOnce(t *testing.T) {
	s := NewSessions(NewStore())
	cmd := Command{Op: OpPut, Key: "ctr", Value: []byte("1")}
	s.Apply(1, 1, cmd)
	// Duplicate of seq 1 must not re-apply.
	cmd2 := Command{Op: OpPut, Key: "ctr", Value: []byte("2")}
	s.Apply(1, 1, cmd2)
	r := s.Store().Apply(Command{Op: OpGet, Key: "ctr"})
	if string(r.Value) != "1" {
		t.Fatalf("duplicate re-applied: %q", r.Value)
	}
	// New seq applies.
	s.Apply(1, 2, cmd2)
	r = s.Store().Apply(Command{Op: OpGet, Key: "ctr"})
	if string(r.Value) != "2" {
		t.Fatalf("new seq not applied: %q", r.Value)
	}
}

func TestSessionsCachedResult(t *testing.T) {
	s := NewSessions(NewStore())
	s.Store().Apply(Command{Op: OpPut, Key: "k", Value: []byte("v")})
	r1 := s.Apply(2, 1, Command{Op: OpGet, Key: "k"})
	r2 := s.Apply(2, 1, Command{Op: OpGet, Key: "k"}) // duplicate
	if !r1.Found || !r2.Found || string(r2.Value) != "v" {
		t.Fatalf("cached result = %+v", r2)
	}
}

func TestSessionsIndependentClients(t *testing.T) {
	s := NewSessions(NewStore())
	s.Apply(1, 5, Command{Op: OpPut, Key: "a", Value: []byte("1")})
	// Client 2 with a lower seq must still apply.
	s.Apply(2, 1, Command{Op: OpPut, Key: "b", Value: []byte("2")})
	if s.Store().Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Store().Len())
	}
}

func TestStorePropertyModelEquivalence(t *testing.T) {
	// Property: Store behaves like a plain map under put/get/delete.
	type step struct {
		Op    uint8
		Key   uint8
		Value uint8
	}
	f := func(steps []step) bool {
		s := NewStore()
		model := map[string]string{}
		for _, st := range steps {
			key := string(rune('a' + st.Key%8))
			val := string(rune('0' + st.Value%10))
			switch st.Op % 3 {
			case 0:
				s.Apply(Command{Op: OpPut, Key: key, Value: []byte(val)})
				model[key] = val
			case 1:
				r := s.Apply(Command{Op: OpGet, Key: key})
				mv, ok := model[key]
				if r.Found != ok || (ok && string(r.Value) != mv) {
					return false
				}
			case 2:
				r := s.Apply(Command{Op: OpDelete, Key: key})
				_, ok := model[key]
				if r.Found != ok {
					return false
				}
				delete(model, key)
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, tc := range []struct {
		op   OpKind
		want string
	}{{OpPut, "put"}, {OpGet, "get"}, {OpDelete, "delete"}, {OpScan, "scan"}} {
		if tc.op.String() != tc.want {
			t.Errorf("%v", tc.op)
		}
	}
}

func TestMergePairs(t *testing.T) {
	p := func(keys ...string) []Pair {
		out := make([]Pair, len(keys))
		for i, k := range keys {
			out[i] = Pair{Key: k, Value: []byte(k)}
		}
		return out
	}
	keysOf := func(pairs []Pair) string {
		s := ""
		for _, pr := range pairs {
			s += pr.Key + ","
		}
		return s
	}
	cases := []struct {
		name  string
		limit int
		lists [][]Pair
		want  string
	}{
		{"empty", 10, nil, ""},
		{"single list", 10, [][]Pair{p("a", "b")}, "a,b,"},
		{"interleaved", 0, [][]Pair{p("a", "c", "e"), p("b", "d")}, "a,b,c,d,e,"},
		{"limit cuts", 3, [][]Pair{p("a", "c", "e"), p("b", "d")}, "a,b,c,"},
		{"duplicate keys collapse", 0, [][]Pair{p("a", "b"), p("b", "c")}, "a,b,c,"},
		{"empty fragments", 0, [][]Pair{nil, p("x"), nil}, "x,"},
		{"three way", 4, [][]Pair{p("g"), p("a", "h"), p("c", "d", "z")}, "a,c,d,g,"},
	}
	for _, tc := range cases {
		if got := keysOf(MergePairs(tc.limit, tc.lists...)); got != tc.want {
			t.Errorf("%s: merged keys %q, want %q", tc.name, got, tc.want)
		}
	}
	// First fragment wins on duplicates.
	got := MergePairs(0, []Pair{{Key: "k", Value: []byte("first")}}, []Pair{{Key: "k", Value: []byte("second")}})
	if len(got) != 1 || string(got[0].Value) != "first" {
		t.Fatalf("duplicate resolution: %+v", got)
	}
}
