package kv

import (
	"bytes"
	"testing"
)

func TestStoreCAS(t *testing.T) {
	s := NewStore()
	// CAS on an absent key with empty expect succeeds.
	r := s.Apply(Command{Op: OpCAS, Key: "k", Expect: nil, Value: []byte("v1")})
	if !r.Found {
		t.Fatal("CAS on absent key with empty expect failed")
	}
	// Wrong expect fails and returns the current value.
	r = s.Apply(Command{Op: OpCAS, Key: "k", Expect: []byte("nope"), Value: []byte("v2")})
	if r.Found {
		t.Fatal("CAS with wrong expect succeeded")
	}
	if !bytes.Equal(r.Value, []byte("v1")) {
		t.Fatalf("failed CAS returned %q, want current value", r.Value)
	}
	// Right expect swaps.
	r = s.Apply(Command{Op: OpCAS, Key: "k", Expect: []byte("v1"), Value: []byte("v2")})
	if !r.Found {
		t.Fatal("CAS with right expect failed")
	}
	got := s.Apply(Command{Op: OpGet, Key: "k"})
	if string(got.Value) != "v2" {
		t.Fatalf("value = %q", got.Value)
	}
}

func TestStoreCASDoesNotAliasValue(t *testing.T) {
	s := NewStore()
	v := []byte("abc")
	s.Apply(Command{Op: OpCAS, Key: "k", Value: v})
	v[0] = 'X'
	if got := s.Apply(Command{Op: OpGet, Key: "k"}); string(got.Value) != "abc" {
		t.Fatalf("CAS aliased caller buffer: %q", got.Value)
	}
}

func TestCommandCASEncodeDecode(t *testing.T) {
	in := Command{Op: OpCAS, Key: "k", Expect: []byte("old"), Value: []byte("new")}
	out, err := DecodeCommand(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != OpCAS || !bytes.Equal(out.Expect, []byte("old")) || !bytes.Equal(out.Value, []byte("new")) {
		t.Fatalf("round trip = %+v", out)
	}
}
