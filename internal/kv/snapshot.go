package kv

import (
	"fmt"

	"depfast/internal/codec"
)

// Snapshot serializes the full store state.
func (s *Store) Snapshot() []byte {
	e := codec.NewEncoder(64 * len(s.m))
	e.Int(len(s.m))
	for k, v := range s.m {
		e.String(k)
		e.BytesField(v)
	}
	return e.Bytes()
}

// Restore replaces the store contents with a snapshot produced by
// Snapshot.
func (s *Store) Restore(data []byte) error {
	d := codec.NewDecoder(data)
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > 1<<28 {
		return fmt.Errorf("kv: implausible snapshot size %d", n)
	}
	m := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := d.String()
		v := d.BytesField()
		if d.Err() != nil {
			return d.Err()
		}
		m[k] = v
	}
	s.m = m
	s.sortedKeys = nil
	s.dirty = true
	return nil
}

// encodeResult serializes one cached session result.
func encodeResult(e *codec.Encoder, r Result) {
	e.Bool(r.Found)
	e.BytesField(r.Value)
	e.Int(len(r.Pairs))
	for _, p := range r.Pairs {
		e.String(p.Key)
		e.BytesField(p.Value)
	}
}

// decodeResult parses one cached session result.
func decodeResult(d *codec.Decoder) Result {
	r := Result{Found: d.Bool(), Value: d.BytesField()}
	n := d.Int()
	if n < 0 || n > 1<<20 {
		return r
	}
	for i := 0; i < n; i++ {
		r.Pairs = append(r.Pairs, Pair{Key: d.String(), Value: d.BytesField()})
	}
	return r
}

// Snapshot serializes the store plus the session dedup state, so a
// restored replica keeps exactly-once semantics across the snapshot
// boundary.
func (s *Sessions) Snapshot() []byte {
	e := codec.NewEncoder(1024)
	store := s.store.Snapshot()
	e.BytesField(store)
	e.Int(len(s.lastSeq))
	for id, seq := range s.lastSeq {
		e.Uint64(id)
		e.Uint64(seq)
		encodeResult(e, s.lastRes[id])
	}
	return e.Bytes()
}

// Restore replaces sessions + store state from a Sessions snapshot.
func (s *Sessions) Restore(data []byte) error {
	d := codec.NewDecoder(data)
	storeData := d.BytesField()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > 1<<24 {
		return fmt.Errorf("kv: implausible session count %d", n)
	}
	if err := s.store.Restore(storeData); err != nil {
		return err
	}
	s.lastSeq = make(map[uint64]uint64, n)
	s.lastRes = make(map[uint64]Result, n)
	for i := 0; i < n; i++ {
		id := d.Uint64()
		seq := d.Uint64()
		res := decodeResult(d)
		if d.Err() != nil {
			return d.Err()
		}
		s.lastSeq[id] = seq
		s.lastRes[id] = res
	}
	return nil
}
