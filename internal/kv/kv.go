// Package kv provides the replicated key-value store pieces shared by
// DepFastRaft and the baseline RSMs: the deterministic state machine,
// the serializable command format, and the client request/response
// wire messages with session-based exactly-once semantics.
package kv

import (
	"sort"

	"depfast/internal/codec"
)

// OpKind is a state-machine operation.
type OpKind int

const (
	// OpPut sets a key.
	OpPut OpKind = iota
	// OpGet reads a key.
	OpGet
	// OpDelete removes a key.
	OpDelete
	// OpScan reads up to ScanLen keys starting at Key.
	OpScan
	// OpCAS atomically replaces Key's value with Value when the
	// current value equals Expect (absent counts as empty Expect).
	OpCAS
)

// String names the operation.
func (o OpKind) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpCAS:
		return "cas"
	}
	return "unknown"
}

// Command is one deterministic state-machine operation. Commands are
// embedded in replicated log entries.
type Command struct {
	Op      OpKind
	Key     string
	Value   []byte
	ScanLen int
	// Expect is the precondition value for OpCAS.
	Expect []byte
}

// Encode serializes the command for a log entry.
func (c Command) Encode() []byte {
	e := codec.NewEncoder(len(c.Key) + len(c.Value) + 16)
	e.Int(int(c.Op))
	e.String(c.Key)
	e.BytesField(c.Value)
	e.Int(c.ScanLen)
	e.BytesField(c.Expect)
	return e.Bytes()
}

// DecodeCommand parses a command from entry data.
func DecodeCommand(data []byte) (Command, error) {
	d := codec.NewDecoder(data)
	c := Command{
		Op:  OpKind(d.Int()),
		Key: d.String(),
	}
	c.Value = d.BytesField()
	c.ScanLen = d.Int()
	c.Expect = d.BytesField()
	return c, d.Err()
}

// Pair is one key-value pair in a scan result.
type Pair struct {
	Key   string
	Value []byte
}

// Result is the outcome of applying a command.
type Result struct {
	Found bool
	Value []byte
	Pairs []Pair
}

// Store is the in-memory state machine. It is not internally
// synchronized: the owning runtime applies commands serially.
type Store struct {
	m map[string][]byte
	// sortedKeys caches the key order for scans; invalidated by writes.
	sortedKeys []string
	dirty      bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string][]byte)}
}

// Len returns the number of keys.
func (s *Store) Len() int { return len(s.m) }

// Apply executes cmd deterministically and returns its result.
func (s *Store) Apply(cmd Command) Result {
	switch cmd.Op {
	case OpPut:
		v := make([]byte, len(cmd.Value))
		copy(v, cmd.Value)
		if _, exists := s.m[cmd.Key]; !exists {
			s.dirty = true
		}
		s.m[cmd.Key] = v
		return Result{Found: true}
	case OpGet:
		v, ok := s.m[cmd.Key]
		return Result{Found: ok, Value: v}
	case OpDelete:
		_, ok := s.m[cmd.Key]
		if ok {
			delete(s.m, cmd.Key)
			s.dirty = true
		}
		return Result{Found: ok}
	case OpScan:
		return s.scan(cmd.Key, cmd.ScanLen)
	case OpCAS:
		cur := s.m[cmd.Key]
		if !bytesEqual(cur, cmd.Expect) {
			return Result{Found: false, Value: cur}
		}
		v := make([]byte, len(cmd.Value))
		copy(v, cmd.Value)
		if _, exists := s.m[cmd.Key]; !exists {
			s.dirty = true
		}
		s.m[cmd.Key] = v
		return Result{Found: true}
	}
	return Result{}
}

// bytesEqual treats nil and empty as equal, so a CAS with an empty
// Expect succeeds on an absent key.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scan returns up to n pairs with keys >= start, in key order.
func (s *Store) scan(start string, n int) Result {
	if n <= 0 {
		n = 1
	}
	if s.dirty || s.sortedKeys == nil {
		s.sortedKeys = s.sortedKeys[:0]
		for k := range s.m {
			s.sortedKeys = append(s.sortedKeys, k)
		}
		sort.Strings(s.sortedKeys)
		s.dirty = false
	}
	i := sort.SearchStrings(s.sortedKeys, start)
	var pairs []Pair
	for ; i < len(s.sortedKeys) && len(pairs) < n; i++ {
		k := s.sortedKeys[i]
		pairs = append(pairs, Pair{Key: k, Value: s.m[k]})
	}
	return Result{Found: len(pairs) > 0, Pairs: pairs}
}

// MergePairs k-way merges sorted scan-result fragments (as returned by
// OpScan on independent stores) into one key-ordered slice of at most
// limit pairs (limit <= 0 means unlimited). Duplicate keys across
// fragments keep the first fragment's value; fragments are assumed
// internally sorted and are not modified. A sharded router uses this
// to assemble a cross-shard scan from per-shard results.
func MergePairs(limit int, lists ...[]Pair) []Pair {
	idx := make([]int, len(lists))
	var out []Pair
	for limit <= 0 || len(out) < limit {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 || l[idx[i]].Key < lists[best][idx[best]].Key {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := lists[best][idx[best]]
		idx[best]++
		if n := len(out); n > 0 && out[n-1].Key == p.Key {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Message tags for the client protocol (range 100–199).
const (
	TagClientRequest  = 101
	TagClientResponse = 102
)

// ClientRequest carries one command from a client session. ClientID
// and Seq implement exactly-once application: a server remembers the
// last applied Seq per client and returns the cached result on
// duplicates. TraceID/TraceSpan/TraceSampled propagate the xtrace
// causal context across the wire: the server parents its commit
// pipeline spans under TraceSpan (the client's RPC-attempt span) so
// the client's trace tree spans processes. Zero TraceID = untraced.
type ClientRequest struct {
	ClientID uint64
	Seq      uint64
	Cmd      Command

	TraceID      uint64
	TraceSpan    uint64
	TraceSampled bool

	// FollowerRead asks a non-leader replica to serve this Get locally
	// (after confirming a read index with the leader) instead of
	// bouncing NotLeader — the hedged-read path. Leaders ignore it.
	FollowerRead bool
}

// TypeTag implements codec.Message.
func (m *ClientRequest) TypeTag() uint32 { return TagClientRequest }

// MarshalTo implements codec.Message.
func (m *ClientRequest) MarshalTo(e *codec.Encoder) {
	e.Uint64(m.ClientID)
	e.Uint64(m.Seq)
	e.BytesField(m.Cmd.Encode())
	e.Uint64(m.TraceID)
	e.Uint64(m.TraceSpan)
	e.Bool(m.TraceSampled)
	e.Bool(m.FollowerRead)
}

// UnmarshalFrom implements codec.Message.
func (m *ClientRequest) UnmarshalFrom(d *codec.Decoder) {
	m.ClientID = d.Uint64()
	m.Seq = d.Uint64()
	cmd, err := DecodeCommand(d.BytesField())
	if err == nil {
		m.Cmd = cmd
	}
	m.TraceID = d.Uint64()
	m.TraceSpan = d.Uint64()
	m.TraceSampled = d.Bool()
	m.FollowerRead = d.Bool()
}

// ClientResponse answers a ClientRequest.
type ClientResponse struct {
	OK         bool
	NotLeader  bool
	LeaderHint string
	Found      bool
	Value      []byte
	Pairs      []Pair
	Err        string
}

// TypeTag implements codec.Message.
func (m *ClientResponse) TypeTag() uint32 { return TagClientResponse }

// MarshalTo implements codec.Message.
func (m *ClientResponse) MarshalTo(e *codec.Encoder) {
	e.Bool(m.OK)
	e.Bool(m.NotLeader)
	e.String(m.LeaderHint)
	e.Bool(m.Found)
	e.BytesField(m.Value)
	e.Int(len(m.Pairs))
	for _, p := range m.Pairs {
		e.String(p.Key)
		e.BytesField(p.Value)
	}
	e.String(m.Err)
}

// UnmarshalFrom implements codec.Message.
func (m *ClientResponse) UnmarshalFrom(d *codec.Decoder) {
	m.OK = d.Bool()
	m.NotLeader = d.Bool()
	m.LeaderHint = d.String()
	m.Found = d.Bool()
	m.Value = d.BytesField()
	n := d.Int()
	if n < 0 || n > 1<<20 {
		return
	}
	m.Pairs = make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		m.Pairs = append(m.Pairs, Pair{Key: d.String(), Value: d.BytesField()})
	}
	m.Err = d.String()
}

func init() {
	codec.Register(TagClientRequest, func() codec.Message { return new(ClientRequest) })
	codec.Register(TagClientResponse, func() codec.Message { return new(ClientResponse) })
}

// Sessions implements exactly-once command application over a Store:
// duplicate (ClientID, Seq) pairs return the cached result without
// re-applying.
type Sessions struct {
	store   *Store
	lastSeq map[uint64]uint64
	lastRes map[uint64]Result
}

// NewSessions wraps store with session tracking.
func NewSessions(store *Store) *Sessions {
	return &Sessions{
		store:   store,
		lastSeq: make(map[uint64]uint64),
		lastRes: make(map[uint64]Result),
	}
}

// Store returns the wrapped store.
func (s *Sessions) Store() *Store { return s.store }

// Apply applies the request exactly once. Reordered stale requests
// (Seq lower than the last applied) return the latest cached result —
// clients issue one request at a time, so this only happens on
// retries.
func (s *Sessions) Apply(clientID, seq uint64, cmd Command) Result {
	if last, ok := s.lastSeq[clientID]; ok && seq <= last {
		return s.lastRes[clientID]
	}
	res := s.store.Apply(cmd)
	s.lastSeq[clientID] = seq
	s.lastRes[clientID] = res
	return res
}
