// Package obs is the flight recorder of the reproduction: a single
// concurrency-safe, typed event stream that every layer publishes
// into — fault injections (failslow), detector verdict transitions
// (detect), sentinel actions and leader changes (raft), per-entry
// commit-pipeline spans (raft replication), and periodic gauge
// samples bridged from metrics. The paper's core evidence is
// temporal (Figures 2–3: when a fault lands, when the system
// notices, how it recovers); this package is the shared clock and
// timeline those figures need. On top of the stream sit a
// time-bucketed timeline aggregator (timeline.go), an MTTD/MTTR
// report analyzer (report.go), and JSONL/text exporters (export.go).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Type classifies an event. Values are stable strings so JSONL
// exports remain readable and diffable across versions.
type Type string

const (
	// FaultInjected / FaultCleared bracket a fail-slow fault on a node;
	// Detail names the fault (failslow.Fault.String()).
	FaultInjected Type = "fault.injected"
	FaultCleared  Type = "fault.cleared"

	// VerdictSuspect / VerdictCleared are detector transitions: Node is
	// the observer, Peer the judged node. A self-verdict (the sentinel's
	// own CPU/disk probes or a slow-vote majority) has Peer == Node and
	// Detail naming the signal.
	VerdictSuspect Type = "verdict.suspect"
	VerdictCleared Type = "verdict.cleared"

	// Handoff* trace a drained leadership transfer off a fail-slow
	// leader: Started when the sentinel freezes proposals, Drained when
	// the target caught up and TimeoutNow was sent, Completed when the
	// old leader observed itself deposed. Node is the abdicating
	// leader, Peer the transfer target.
	HandoffStarted   Type = "handoff.started"
	HandoffDrained   Type = "handoff.drained"
	HandoffCompleted Type = "handoff.completed"

	// QuarantineEnter / QuarantineExit trace follower quarantine: Node
	// is the leader, Peer the (un)quarantined follower. Exit is the
	// rehabilitation event.
	QuarantineEnter Type = "quarantine.enter"
	QuarantineExit  Type = "quarantine.exit"

	// MemberAdded / MemberRemoved trace dynamic membership: Node is the
	// leader, Peer the subject. Added's Detail is "learner" (join) or
	// "voter" (promotion); Removed's Detail is the subject's prior role.
	// Fields["index"] is the ConfChange entry's log index.
	MemberAdded   Type = "member.added"
	MemberRemoved Type = "member.removed"

	// LearnerCaughtUp marks a bootstrapping learner reaching the log
	// tip, gating its promotion; Node is the leader, Peer the learner.
	LearnerCaughtUp Type = "learner.caughtup"

	// ReplacementCompleted closes one automated replacement: Peer is the
	// removed replica, Detail the spare that took its place (or
	// "removed-only" when no spare was available).
	ReplacementCompleted Type = "replace.completed"

	// LeaderElected marks a node winning an election; Fields["term"].
	LeaderElected Type = "leader.elected"

	// CommitSpan is one entry's commit-pipeline timing on the leader:
	// Fields carry per-stage durations in microseconds — append_us
	// (propose → local fsync durable), replicate_us (propose → fan-out
	// dispatched to every follower outbox), quorum_us (propose → quorum
	// ack), apply_us (quorum ack → applied), total_us — plus index and
	// count (batched entries share one span).
	CommitSpan Type = "commit.span"

	// GaugeSample is a periodic bridge from metrics: Fields carry rate
	// (ops/sec over the sampling window), total (ops so far), p50_us /
	// p99_us (client-observed latency), quarantined (set size).
	GaugeSample Type = "gauge.sample"

	// SPGSnapshot is a periodic summary of the slowness propagation
	// graph built from wait traces so far: Fields carry nodes, edges,
	// singular and quorum edge counts plus records; Detail lists the
	// hottest edges.
	SPGSnapshot Type = "spg.snapshot"

	// ScheduleStarted / ScheduleVerdict bracket one explored fault
	// schedule: Detail carries the schedule's replay spec; the verdict's
	// Fields["pass"] is 1/0 and Fields["index"] the schedule's position
	// in the exploration budget.
	ScheduleStarted Type = "explore.schedule"
	ScheduleVerdict Type = "explore.verdict"

	// InvariantViolated marks one failed run invariant within a
	// schedule: Detail names the invariant and what it saw
	// (linearizability, acked-write loss, convergence, containment).
	InvariantViolated Type = "explore.violation"

	// AttributionSample is a periodic critical-path blame table from the
	// trace collector: Fields carry blame:<node>/<resource> shares in
	// [0,1] plus traces (analyzed) and tail (promoted) counts; Detail
	// names the top-blamed (node, resource) pair.
	AttributionSample Type = "attribution.sample"

	// HedgeFired / HedgeWon / HedgeCancelled trace request-path
	// speculation: Node is the hedging client, Peer the hedge target.
	// Fired's Detail carries the kind ("read"/"write") and the slow
	// primary; Won's Fields["latency_us"] is the winning hedge's
	// latency; Cancelled marks an abandoned hedge (Detail says why —
	// "primary won", a useless answer, or a double timeout).
	HedgeFired     Type = "hedge.fired"
	HedgeWon       Type = "hedge.won"
	HedgeCancelled Type = "hedge.cancelled"

	// Phase marks a harness experiment phase boundary (Detail names it:
	// warmup, pre-window, grace, post-window, clear, ...).
	Phase Type = "phase"

	// Meta is the export header record carrying stream metadata
	// (Fields["dropped"], Fields["events"]); analyzers ignore it.
	Meta Type = "meta"
)

// Event is one typed, timestamped occurrence on the unified timeline.
type Event struct {
	Time   time.Time
	Type   Type
	Node   string             // emitting node (server, client, or "harness")
	Peer   string             // subject peer, when the event is about one
	Shard  string             // owning shard/replica-group, when deployed sharded
	Detail string             // free-form annotation
	Fields map[string]float64 // numeric attributes (durations in µs)
}

// Field returns a numeric attribute (0 when absent).
func (e Event) Field(k string) float64 { return e.Fields[k] }

// Recorder accumulates events from every layer of a deployment. It is
// safe for concurrent use and safe to use as a nil pointer: every
// method no-ops on nil, so instrumentation sites need no guards.
//
// A recorder obtained from Tagged is a view onto its root: it shares
// the root's storage but stamps a shard ID onto every event emitted
// through it, so a multi-group deployment lands on one timeline with
// each event attributed to its replica group.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	limit   int
	dropped int64
	// droppedBy tallies discarded events by shard tag ("" for
	// untagged), so a sharded run can see which replica group's stream
	// the drop-oldest policy actually truncated.
	droppedBy map[string]int64

	// Tagged-view state: root points at the storage-owning recorder
	// (nil for a root) and shard is stamped onto emitted events.
	root  *Recorder
	shard string
}

// NewRecorder returns an empty recorder. limit bounds retained events
// (0 = unlimited); when full, the oldest half is dropped and counted,
// so long experiments keep recent behaviour and truncation is never
// silent.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Tagged returns a view of r that stamps shard onto every event
// emitted through it (events that already carry a shard keep it).
// Views share the root's storage: Events, Len, Dropped, and Reset all
// operate on the full stream. Nil-safe; Tagged of a view re-tags
// against the same root.
func (r *Recorder) Tagged(shard string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{root: r.target(), shard: shard}
}

// Shard returns the shard ID this recorder stamps ("" for a root).
func (r *Recorder) Shard() string {
	if r == nil {
		return ""
	}
	return r.shard
}

// target resolves the storage-owning recorder.
func (r *Recorder) target() *Recorder {
	if r.root != nil {
		return r.root
	}
	return r
}

// Emit appends one event, stamping Time if unset and — on tagged
// views — the shard ID. Nil-safe.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Shard == "" {
		ev.Shard = r.shard
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.limit > 0 && len(t.events) >= t.limit {
		half := len(t.events) / 2
		if t.droppedBy == nil {
			t.droppedBy = make(map[string]int64)
		}
		for _, old := range t.events[:half] {
			t.droppedBy[old.Shard]++
		}
		copy(t.events, t.events[half:])
		t.events = t.events[:len(t.events)-half]
		t.dropped += int64(half)
	}
	t.events = append(t.events, ev)
}

// Events returns a copy of the retained events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the limit.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// DroppedByShard returns the per-shard breakdown of discarded events
// (key "" counts untagged events). Nil when nothing was dropped.
func (r *Recorder) DroppedByShard() map[string]int64 {
	if r == nil {
		return nil
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.droppedBy) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.droppedBy))
	for k, v := range t.droppedBy {
		out[k] = v
	}
	return out
}

// Reset discards all events and the drop count.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	t := r.target()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.dropped = 0
	t.droppedBy = nil
}

// ByTime returns events sorted by timestamp (stable, so same-instant
// events keep emission order). The input is not modified.
func ByTime(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Filter returns the events whose type is in keep.
func Filter(events []Event, keep ...Type) []Event {
	set := make(map[Type]bool, len(keep))
	for _, t := range keep {
		set[t] = true
	}
	var out []Event
	for _, e := range events {
		if set[e.Type] {
			out = append(out, e)
		}
	}
	return out
}

// FilterShard returns the events tagged with the given shard ID.
func FilterShard(events []Event, shard string) []Event {
	var out []Event
	for _, e := range events {
		if e.Shard == shard {
			out = append(out, e)
		}
	}
	return out
}

// String renders one event on one line, offsets relative to t0.
func (e Event) describe(t0 time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s  %-18s %-10s", e.Time.Sub(t0).Round(time.Millisecond), e.Type, e.Node)
	if e.Shard != "" {
		fmt.Fprintf(&b, " [%s]", e.Shard)
	}
	if e.Peer != "" {
		fmt.Fprintf(&b, " peer=%s", e.Peer)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%.0f", k, e.Fields[k])
		}
	}
	return b.String()
}
