package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeHedges(t *testing.T) {
	events := []Event{
		{Type: HedgeFired, Peer: "s2", Detail: "read slow=s1"},
		{Type: HedgeWon, Peer: "s2", Fields: map[string]float64{"latency_us": 4000}},
		{Type: HedgeFired, Peer: "s2", Detail: "read slow=s1"},
		{Type: HedgeCancelled, Peer: "s2", Detail: "primary won"},
		{Type: HedgeFired, Peer: "s3", Detail: "write slow=s1"},
		{Type: HedgeWon, Peer: "s3", Fields: map[string]float64{"latency_us": 8000}},
		{Type: HedgeCancelled, Peer: "s3", Detail: "timeout"},
		{Type: Phase, Detail: "unrelated"},
	}
	s := SummarizeHedges(events)
	if s.Fired != 3 || s.Won != 2 || s.Cancelled != 2 || s.Wasted != 1 || s.Writes != 1 {
		t.Fatalf("summary = %+v, want fired 3 / won 2 / cancelled 2 / wasted 1 / writes 1", s)
	}
	if len(s.Rows) != 2 || s.Rows[0].Target != "s2" {
		t.Fatalf("rows = %+v, want s2 (most fired) first", s.Rows)
	}
	if s.Rows[0].Wasted != 1 || s.Rows[0].WonMean != 4*time.Millisecond {
		t.Fatalf("s2 row = %+v, want wasted 1, won-mean 4ms", s.Rows[0])
	}
	out := s.Render()
	if !strings.Contains(out, "3 fired (1 writes), 2 won, 1 wasted") {
		t.Fatalf("render header missing tallies:\n%s", out)
	}
	if !strings.Contains(out, "s2") || !strings.Contains(out, "s3") {
		t.Fatalf("render missing per-target rows:\n%s", out)
	}
}

func TestSummarizeHedgesEmpty(t *testing.T) {
	s := SummarizeHedges([]Event{{Type: Phase}})
	if s.Fired != 0 || s.Render() != "" {
		t.Fatalf("empty stream should render nothing, got %q", s.Render())
	}
}
