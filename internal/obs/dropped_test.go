package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestDroppedByShard verifies the drop-oldest policy tallies which
// shard's events it discarded, and that the breakdown round-trips
// through the JSONL meta record.
func TestDroppedByShard(t *testing.T) {
	r := NewRecorder(8)
	a, b := r.Tagged("g0"), r.Tagged("g1")
	for i := 0; i < 6; i++ {
		a.Emit(Event{Type: GaugeSample})
	}
	for i := 0; i < 6; i++ {
		b.Emit(Event{Type: GaugeSample})
	}
	by := r.DroppedByShard()
	if by == nil {
		t.Fatal("no per-shard drop breakdown after exceeding the limit")
	}
	var total int64
	for _, n := range by {
		total += n
	}
	if total != r.Dropped() {
		t.Fatalf("per-shard drops sum to %d, total dropped is %d", total, r.Dropped())
	}
	if by["g0"] == 0 {
		t.Fatalf("oldest events were g0's, but g0 shows no drops: %v", by)
	}

	var buf bytes.Buffer
	if err := WriteRecorderJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	_, dropped, backBy, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != r.Dropped() {
		t.Fatalf("round-trip dropped %d, want %d", dropped, r.Dropped())
	}
	for shard, n := range by {
		if backBy[shard] != n {
			t.Fatalf("round-trip drops for %q = %d, want %d (got %v)", shard, backBy[shard], n, backBy)
		}
	}

	r.Reset()
	if r.DroppedByShard() != nil {
		t.Fatal("Reset did not clear the per-shard breakdown")
	}
}

// TestReportRendersAttribution checks the analyzer picks up the newest
// attribution sample and renders its blame table.
func TestReportRendersAttribution(t *testing.T) {
	evs := []Event{
		{Type: AttributionSample, Node: "harness",
			Fields: map[string]float64{"traces": 10, "tail": 2, "blame:s1/disk": 0.9}},
		{Type: AttributionSample, Node: "harness", Detail: "s2/net",
			Fields: map[string]float64{"traces": 40, "tail": 7, "blame:s2/net": 0.7, "blame:s1/disk": 0.2}},
	}
	rep := Analyze(evs, ReportConfig{})
	if rep.BlameTraces != 40 || rep.BlameTail != 7 {
		t.Fatalf("analyzer kept the wrong sample: traces=%d tail=%d", rep.BlameTraces, rep.BlameTail)
	}
	if len(rep.Blame) != 2 || rep.Blame[0].Node != "s2" || rep.Blame[0].Res != "net" {
		t.Fatalf("blame rows wrong: %+v", rep.Blame)
	}
	out := rep.Render()
	if !strings.Contains(out, "critical-path attribution") || !strings.Contains(out, "s2") {
		t.Fatalf("render missing attribution table:\n%s", out)
	}
}
