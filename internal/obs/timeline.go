package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Bucket aggregates one fixed-width slice of the event stream into
// the per-second numbers the paper's on/off comparison plots are made
// of: observed client rate, client latency quantiles, commit volume
// and commit-pipeline latency, plus everything notable that happened
// in the slice.
type Bucket struct {
	Start time.Time

	// From gauge samples in the bucket (mean of samples).
	Rate    float64
	P50     time.Duration
	P99     time.Duration
	Samples int

	// From commit spans in the bucket. Commits counts entries (a
	// batched span contributes its whole batch); CommitMean averages
	// per span — the pipeline latency one proposal experienced.
	Commits    int
	Spans      int
	CommitMean time.Duration
	CommitMax  time.Duration

	// Quarantined is the largest quarantine-set size seen in the bucket.
	Quarantined int

	// Marks are the notable (non-span, non-gauge) events in the bucket.
	Marks []Event
}

// Timeline is the bucketed view of one recorded run.
type Timeline struct {
	BucketSize time.Duration
	Start      time.Time
	End        time.Time
	Buckets    []Bucket
}

// BuildTimeline aggregates events into fixed-width buckets (bucket <= 0
// defaults to one second). Meta events are ignored.
func BuildTimeline(events []Event, bucket time.Duration) *Timeline {
	if bucket <= 0 {
		bucket = time.Second
	}
	evs := ByTime(events)
	for len(evs) > 0 && evs[0].Type == Meta {
		evs = evs[1:]
	}
	tl := &Timeline{BucketSize: bucket}
	if len(evs) == 0 {
		return tl
	}
	tl.Start = evs[0].Time
	tl.End = evs[len(evs)-1].Time
	n := int(tl.End.Sub(tl.Start)/bucket) + 1
	tl.Buckets = make([]Bucket, n)
	for i := range tl.Buckets {
		tl.Buckets[i].Start = tl.Start.Add(time.Duration(i) * bucket)
	}
	type acc struct {
		rate, p50, p99 float64
		n              int
	}
	gauges := make([]acc, n)
	commitTotals := make([]time.Duration, n)
	for _, e := range evs {
		if e.Type == Meta {
			continue
		}
		i := int(e.Time.Sub(tl.Start) / bucket)
		if i < 0 || i >= n {
			continue
		}
		b := &tl.Buckets[i]
		switch e.Type {
		case GaugeSample:
			gauges[i].rate += e.Field("rate")
			gauges[i].p50 += e.Field("p50_us")
			gauges[i].p99 += e.Field("p99_us")
			gauges[i].n++
			if q := int(e.Field("quarantined")); q > b.Quarantined {
				b.Quarantined = q
			}
		case CommitSpan:
			cnt := int(e.Field("count"))
			if cnt <= 0 {
				cnt = 1
			}
			b.Commits += cnt
			b.Spans++
			d := time.Duration(e.Field("total_us")) * time.Microsecond
			commitTotals[i] += d
			if d > b.CommitMax {
				b.CommitMax = d
			}
		default:
			b.Marks = append(b.Marks, e)
		}
	}
	for i := range tl.Buckets {
		b := &tl.Buckets[i]
		if g := gauges[i]; g.n > 0 {
			b.Rate = g.rate / float64(g.n)
			b.P50 = time.Duration(g.p50/float64(g.n)) * time.Microsecond
			b.P99 = time.Duration(g.p99/float64(g.n)) * time.Microsecond
			b.Samples = g.n
		}
		if b.Spans > 0 {
			b.CommitMean = commitTotals[i] / time.Duration(b.Spans)
		}
	}
	return tl
}

// Render formats the timeline as an aligned-column table, one row per
// bucket, with notable events inlined — the textual form of the
// paper's throughput/latency timelines.
func (t *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %10s %10s %8s %10s %5s  %s\n",
		"T+", "RATE", "P50", "P99", "COMMITS", "CMEAN", "QUAR", "EVENTS")
	for _, bk := range t.Buckets {
		marks := make([]string, 0, len(bk.Marks))
		for _, m := range bk.Marks {
			s := string(m.Type)
			if m.Node != "" {
				s += "(" + m.Node
				if m.Peer != "" && m.Peer != m.Node {
					s += "->" + m.Peer
				}
				s += ")"
			}
			marks = append(marks, s)
		}
		sort.Strings(marks)
		fmt.Fprintf(&b, "%-8s %9.0f %10v %10v %8d %10v %5d  %s\n",
			bk.Start.Sub(t.Start).Round(time.Millisecond),
			bk.Rate,
			bk.P50.Round(10*time.Microsecond),
			bk.P99.Round(10*time.Microsecond),
			bk.Commits,
			bk.CommitMean.Round(10*time.Microsecond),
			bk.Quarantined,
			strings.Join(marks, " "))
	}
	return b.String()
}
