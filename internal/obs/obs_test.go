package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: FaultInjected})
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must no-op")
	}
	r.Reset()
}

func TestRecorderStampsTimeAndOrders(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(Event{Type: FaultInjected, Node: "s1"})
	r.Emit(Event{Type: FaultCleared, Node: "s1"})
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d, want 2", len(evs))
	}
	if evs[0].Time.IsZero() || evs[1].Time.Before(evs[0].Time) {
		t.Fatalf("timestamps not stamped/ordered: %v %v", evs[0].Time, evs[1].Time)
	}
}

func TestRecorderDropCounting(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Emit(Event{Type: CommitSpan, Fields: map[string]float64{"index": float64(i)}})
	}
	if r.Len() > 8 {
		t.Fatalf("len = %d, want <= 8", r.Len())
	}
	if r.Dropped() == 0 {
		t.Fatal("dropped count not tracked")
	}
	if got := int64(r.Len()) + r.Dropped(); got != 20 {
		t.Fatalf("retained+dropped = %d, want 20", got)
	}
	// Newest events survive.
	evs := r.Events()
	if evs[len(evs)-1].Field("index") != 19 {
		t.Fatalf("newest event lost: %v", evs[len(evs)-1])
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(Event{Type: GaugeSample})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 4000 {
		t.Fatalf("len = %d, want 4000", r.Len())
	}
}

func TestRecorderTaggedViews(t *testing.T) {
	root := NewRecorder(0)
	g1 := root.Tagged("shard1")
	g2 := root.Tagged("shard2")
	g1.Emit(Event{Type: FaultInjected, Node: "s1"})
	g2.Emit(Event{Type: QuarantineEnter, Node: "s4", Peer: "s5"})
	root.Emit(Event{Type: Phase, Node: "harness", Detail: "warmup"})
	// An event that already carries a shard keeps it.
	g1.Emit(Event{Type: GaugeSample, Node: "harness", Shard: "shard9"})

	evs := root.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4 (views share root storage)", len(evs))
	}
	if evs[0].Shard != "shard1" || evs[1].Shard != "shard2" {
		t.Fatalf("shard tags = %q/%q, want shard1/shard2", evs[0].Shard, evs[1].Shard)
	}
	if evs[2].Shard != "" {
		t.Fatalf("root emission tagged %q, want untagged", evs[2].Shard)
	}
	if evs[3].Shard != "shard9" {
		t.Fatalf("explicit shard overwritten: %q", evs[3].Shard)
	}
	// Views see the shared stream and re-tagging goes to the same root.
	if g1.Len() != 4 || g2.Len() != 4 {
		t.Fatalf("view lens = %d/%d, want 4/4", g1.Len(), g2.Len())
	}
	g1.Tagged("shard3").Emit(Event{Type: FaultCleared, Node: "s1"})
	if root.Len() != 5 {
		t.Fatalf("re-tagged view bypassed root: len = %d", root.Len())
	}
	if got := FilterShard(root.Events(), "shard1"); len(got) != 1 || got[0].Type != FaultInjected {
		t.Fatalf("FilterShard(shard1) = %+v", got)
	}
	// Nil-safety of the view constructor.
	var nilRec *Recorder
	if nilRec.Tagged("x") != nil {
		t.Fatal("nil.Tagged must be nil")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	base := time.Unix(100, 0)
	r.Emit(Event{Time: base, Type: FaultInjected, Node: "s1", Detail: "CPU Slowness"})
	r.Emit(Event{Time: base.Add(time.Second), Type: VerdictSuspect, Node: "s2", Peer: "s1",
		Shard: "shard1", Fields: map[string]float64{"ewma_us": 1234}})
	var buf bytes.Buffer
	if err := WriteRecorderJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	evs, dropped, _, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Type != FaultInjected || evs[0].Detail != "CPU Slowness" {
		t.Fatalf("event 0 mangled: %+v", evs[0])
	}
	if evs[1].Peer != "s1" || evs[1].Shard != "shard1" || evs[1].Field("ewma_us") != 1234 {
		t.Fatalf("event 1 mangled: %+v", evs[1])
	}
	if !evs[1].Time.Equal(base.Add(time.Second)) {
		t.Fatalf("time mangled: %v", evs[1].Time)
	}
}

func TestJSONLDroppedMeta(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []Event{{Time: time.Unix(1, 0), Type: FaultInjected, Node: "s1"}}, 42, nil); err != nil {
		t.Fatal(err)
	}
	evs, dropped, _, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 42 {
		t.Fatalf("dropped = %d, want 42", dropped)
	}
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 (meta must be excluded)", len(evs))
	}
}

func TestBuildTimelineBuckets(t *testing.T) {
	base := time.Unix(1000, 0)
	var evs []Event
	// Two seconds of gauge samples: 100 op/s then 10 op/s.
	for i := 0; i < 10; i++ {
		evs = append(evs, Event{Time: base.Add(time.Duration(i) * 100 * time.Millisecond),
			Type: GaugeSample, Node: "harness",
			Fields: map[string]float64{"rate": 100, "p50_us": 1000, "p99_us": 5000}})
	}
	for i := 0; i < 10; i++ {
		evs = append(evs, Event{Time: base.Add(time.Second + time.Duration(i)*100*time.Millisecond),
			Type: GaugeSample, Node: "harness",
			Fields: map[string]float64{"rate": 10, "p50_us": 9000, "p99_us": 90000, "quarantined": 1}})
	}
	evs = append(evs, Event{Time: base.Add(1500 * time.Millisecond), Type: FaultInjected,
		Node: "s1", Detail: "Network Slowness"})
	evs = append(evs, Event{Time: base.Add(300 * time.Millisecond), Type: CommitSpan,
		Fields: map[string]float64{"total_us": 4000, "count": 2}})

	tl := BuildTimeline(evs, time.Second)
	if len(tl.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(tl.Buckets))
	}
	b0, b1 := tl.Buckets[0], tl.Buckets[1]
	if b0.Rate != 100 || b1.Rate != 10 {
		t.Fatalf("rates = %.0f/%.0f, want 100/10", b0.Rate, b1.Rate)
	}
	if b0.Commits != 2 || b0.Spans != 1 || b0.CommitMean != 4*time.Millisecond {
		t.Fatalf("bucket0 commits=%d spans=%d mean=%v", b0.Commits, b0.Spans, b0.CommitMean)
	}
	if b1.Quarantined != 1 {
		t.Fatalf("bucket1 quarantined = %d, want 1", b1.Quarantined)
	}
	if len(b1.Marks) != 1 || b1.Marks[0].Type != FaultInjected {
		t.Fatalf("bucket1 marks = %+v", b1.Marks)
	}
	out := tl.Render()
	if !strings.Contains(out, "fault.injected(s1)") {
		t.Fatalf("render missing fault mark:\n%s", out)
	}
}

func TestRenderEventsSkips(t *testing.T) {
	evs := []Event{
		{Time: time.Unix(1, 0), Type: FaultInjected, Node: "s1", Detail: "CPU Slowness"},
		{Time: time.Unix(2, 0), Type: CommitSpan, Node: "s1"},
	}
	out := RenderEvents(evs, CommitSpan)
	if strings.Contains(out, "commit.span") || !strings.Contains(out, "fault.injected") {
		t.Fatalf("skip filter broken:\n%s", out)
	}
}
