package obs

// This file aggregates HedgeFired/HedgeWon/HedgeCancelled events into
// a per-target table — how often clients speculated, how often the
// hedge actually beat the primary, and how much of the budget was
// burned for nothing. depfast-report renders it whenever a stream
// carries hedge events.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// HedgeRow is one hedge target's speculation tally.
type HedgeRow struct {
	Target    string
	Fired     int
	Won       int
	Cancelled int // abandoned hedges, including primary-won (wasted)
	Wasted    int // the primary-won subset of Cancelled
	// WonMean is the mean winning-hedge latency (zero when none won).
	WonMean time.Duration
}

// HedgeSummary aggregates a stream's speculation events.
type HedgeSummary struct {
	Rows      []HedgeRow
	Fired     int
	Won       int
	Cancelled int
	Wasted    int
	Writes    int // fired hedges that were speculative write re-proposals
}

// SummarizeHedges tallies hedge events by target, most-fired first.
func SummarizeHedges(events []Event) *HedgeSummary {
	rows := make(map[string]*HedgeRow)
	row := func(target string) *HedgeRow {
		r := rows[target]
		if r == nil {
			r = &HedgeRow{Target: target}
			rows[target] = r
		}
		return r
	}
	sum := &HedgeSummary{}
	wonTotal := make(map[string]time.Duration)
	for _, e := range events {
		switch e.Type {
		case HedgeFired:
			row(e.Peer).Fired++
			sum.Fired++
			if strings.HasPrefix(e.Detail, "write") {
				sum.Writes++
			}
		case HedgeWon:
			row(e.Peer).Won++
			sum.Won++
			wonTotal[e.Peer] += time.Duration(e.Field("latency_us")) * time.Microsecond
		case HedgeCancelled:
			r := row(e.Peer)
			r.Cancelled++
			sum.Cancelled++
			if e.Detail == "primary won" {
				r.Wasted++
				sum.Wasted++
			}
		}
	}
	if sum.Fired == 0 {
		return sum
	}
	for target, r := range rows {
		if r.Won > 0 {
			r.WonMean = wonTotal[target] / time.Duration(r.Won)
		}
		sum.Rows = append(sum.Rows, *r)
	}
	sort.Slice(sum.Rows, func(i, j int) bool {
		if sum.Rows[i].Fired != sum.Rows[j].Fired {
			return sum.Rows[i].Fired > sum.Rows[j].Fired
		}
		return sum.Rows[i].Target < sum.Rows[j].Target
	})
	return sum
}

// Render formats the summary as a table; empty string when the stream
// carried no hedge events.
func (s *HedgeSummary) Render() string {
	if s == nil || s.Fired == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hedged requests: %d fired (%d writes), %d won, %d wasted\n",
		s.Fired, s.Writes, s.Won, s.Wasted)
	fmt.Fprintf(&b, "    %-10s %6s %6s %7s %10s\n", "target", "fired", "won", "wasted", "won-mean")
	for _, r := range s.Rows {
		mean := "-"
		if r.Won > 0 {
			mean = r.WonMean.Round(10 * time.Microsecond).String()
		}
		fmt.Fprintf(&b, "    %-10s %6d %6d %7d %10s\n", r.Target, r.Fired, r.Won, r.Wasted, mean)
	}
	return b.String()
}
