package obs

import (
	"strings"
	"testing"
	"time"
)

// synthRun builds a synthetic stream: healthy baseline at 100 op/s,
// fault injected at T+2s, rate collapses to 10, verdict at T+2.4s,
// handoff at T+2.5s, rate recovers to 90 from T+3s on.
func synthRun() []Event {
	base := time.Unix(5000, 0)
	var evs []Event
	gauge := func(at time.Duration, rate float64) {
		evs = append(evs, Event{Time: base.Add(at), Type: GaugeSample, Node: "harness",
			Fields: map[string]float64{"rate": rate, "p50_us": 1000, "p99_us": 4000}})
	}
	span := func(at time.Duration, totalUs float64) {
		evs = append(evs, Event{Time: base.Add(at), Type: CommitSpan, Node: "s1",
			Fields: map[string]float64{
				"append_us": totalUs / 4, "replicate_us": 10,
				"quorum_us": totalUs / 2, "apply_us": totalUs / 2, "total_us": totalUs}})
	}
	for i := 0; i < 20; i++ { // 0..2s healthy
		gauge(time.Duration(i)*100*time.Millisecond, 100)
		span(time.Duration(i)*100*time.Millisecond, 2000)
	}
	evs = append(evs, Event{Time: base.Add(2 * time.Second), Type: FaultInjected,
		Node: "s1", Detail: "CPU Slowness"})
	for i := 0; i < 10; i++ { // 2..3s collapsed
		gauge(2*time.Second+time.Duration(i)*100*time.Millisecond, 10)
		span(2*time.Second+time.Duration(i)*100*time.Millisecond, 40000)
	}
	evs = append(evs, Event{Time: base.Add(2400 * time.Millisecond), Type: VerdictSuspect,
		Node: "s1", Peer: "s1", Detail: "self-cpu"})
	evs = append(evs, Event{Time: base.Add(2500 * time.Millisecond), Type: HandoffDrained,
		Node: "s1", Peer: "s2"})
	for i := 0; i < 10; i++ { // 3..4s recovered
		gauge(3*time.Second+time.Duration(i)*100*time.Millisecond, 90)
		span(3*time.Second+time.Duration(i)*100*time.Millisecond, 2500)
	}
	return evs
}

func TestAnalyzeMTTDAndMTTR(t *testing.T) {
	rep := Analyze(synthRun(), ReportConfig{})
	if len(rep.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(rep.Faults))
	}
	f := rep.Faults[0]
	if f.Node != "s1" || f.Fault != "CPU Slowness" {
		t.Fatalf("fault identity mangled: %+v", f)
	}
	// Detection: the self-verdict at T+2.4s → MTTD 400ms.
	if got := f.MTTD(); got != 400*time.Millisecond {
		t.Fatalf("MTTD = %v, want 400ms", got)
	}
	if f.DetectedBy != VerdictSuspect || f.Detector != "s1" {
		t.Fatalf("detection attribution: by=%v detector=%s", f.DetectedBy, f.Detector)
	}
	// Recovery: rate 90 >= 0.5×100 sustained from T+3s → MTTR 1s.
	if got := f.MTTR(); got != time.Second {
		t.Fatalf("MTTR = %v, want 1s", got)
	}
	if f.BaselineRate != 100 {
		t.Fatalf("baseline = %.0f, want 100", f.BaselineRate)
	}
	if f.FloorRate != 10 {
		t.Fatalf("floor = %.0f, want 10", f.FloorRate)
	}
}

func TestAnalyzeStageBreakdown(t *testing.T) {
	rep := Analyze(synthRun(), ReportConfig{})
	f := rep.Faults[0]
	if f.Before.Spans == 0 || f.During.Spans == 0 || f.After.Spans == 0 {
		t.Fatalf("empty stage windows: before=%d during=%d after=%d",
			f.Before.Spans, f.During.Spans, f.After.Spans)
	}
	if f.Before.Total != 2*time.Millisecond {
		t.Fatalf("before total = %v, want 2ms", f.Before.Total)
	}
	if f.During.Total <= f.Before.Total {
		t.Fatalf("during (%v) should exceed before (%v)", f.During.Total, f.Before.Total)
	}
	if f.After.Total >= f.During.Total {
		t.Fatalf("after (%v) should undercut during (%v)", f.After.Total, f.During.Total)
	}
	out := rep.Render()
	for _, want := range []string{"MTTD", "MTTR", "before", "during", "after", "CPU Slowness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeUndetectedUnrecovered(t *testing.T) {
	base := time.Unix(9000, 0)
	evs := []Event{
		{Time: base, Type: GaugeSample, Node: "harness", Fields: map[string]float64{"rate": 100}},
		{Time: base.Add(100 * time.Millisecond), Type: GaugeSample, Node: "harness", Fields: map[string]float64{"rate": 100}},
		{Time: base.Add(200 * time.Millisecond), Type: FaultInjected, Node: "s2", Detail: "Network Slowness"},
		{Time: base.Add(300 * time.Millisecond), Type: GaugeSample, Node: "harness", Fields: map[string]float64{"rate": 5}},
		{Time: base.Add(400 * time.Millisecond), Type: GaugeSample, Node: "harness", Fields: map[string]float64{"rate": 5}},
	}
	rep := Analyze(evs, ReportConfig{})
	f := rep.Faults[0]
	if f.MTTD() != 0 || f.MTTR() != 0 {
		t.Fatalf("undetected fault got MTTD=%v MTTR=%v", f.MTTD(), f.MTTR())
	}
	out := rep.Render()
	if !strings.Contains(out, "undetected") || !strings.Contains(out, "unrecovered") {
		t.Fatalf("render should flag undetected/unrecovered:\n%s", out)
	}
}

func TestAnalyzeMultipleInjections(t *testing.T) {
	base := time.Unix(100, 0)
	var evs []Event
	for k := 0; k < 2; k++ {
		off := time.Duration(k) * 10 * time.Second
		for i := 0; i < 10; i++ {
			evs = append(evs, Event{Time: base.Add(off + time.Duration(i)*100*time.Millisecond),
				Type: GaugeSample, Node: "harness", Fields: map[string]float64{"rate": 100}})
		}
		evs = append(evs, Event{Time: base.Add(off + time.Second), Type: FaultInjected,
			Node: "s1", Detail: "Disk Slowness"})
		evs = append(evs, Event{Time: base.Add(off + 1200*time.Millisecond), Type: QuarantineEnter,
			Node: "s3", Peer: "s1"})
	}
	rep := Analyze(evs, ReportConfig{})
	if len(rep.Faults) != 2 {
		t.Fatalf("faults = %d, want 2", len(rep.Faults))
	}
	for i, f := range rep.Faults {
		if f.MTTD() != 200*time.Millisecond {
			t.Fatalf("fault %d MTTD = %v, want 200ms", i, f.MTTD())
		}
		if f.DetectedBy != QuarantineEnter {
			t.Fatalf("fault %d detected by %v", i, f.DetectedBy)
		}
	}
}
