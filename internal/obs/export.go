package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// jsonEvent is the stable JSONL form of an event.
type jsonEvent struct {
	TimeNs int64              `json:"t_ns"`
	Type   string             `json:"type"`
	Node   string             `json:"node,omitempty"`
	Peer   string             `json:"peer,omitempty"`
	Shard  string             `json:"shard,omitempty"`
	Detail string             `json:"detail,omitempty"`
	Fields map[string]float64 `json:"fields,omitempty"`
}

// WriteJSONL streams events as JSON lines, prefixed by one Meta record
// carrying the retained-event and dropped counts so a truncated stream
// is never mistaken for a complete one. droppedBy (optional) adds
// per-shard drop counts as dropped:<shard> fields.
func WriteJSONL(w io.Writer, events []Event, dropped int64, droppedBy map[string]int64) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := jsonEvent{
		Type:   string(Meta),
		Fields: map[string]float64{"events": float64(len(events)), "dropped": float64(dropped)},
	}
	for shard, n := range droppedBy {
		if shard == "" {
			shard = "untagged"
		}
		meta.Fields["dropped:"+shard] = float64(n)
	}
	if len(events) > 0 {
		meta.TimeNs = events[0].Time.UnixNano()
	}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for _, e := range events {
		if e.Type == Meta {
			continue
		}
		if err := enc.Encode(jsonEvent{
			TimeNs: e.Time.UnixNano(),
			Type:   string(e.Type),
			Node:   e.Node,
			Peer:   e.Peer,
			Shard:  e.Shard,
			Detail: e.Detail,
			Fields: e.Fields,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRecorderJSONL exports a recorder's full stream.
func WriteRecorderJSONL(w io.Writer, r *Recorder) error {
	return WriteJSONL(w, r.Events(), r.Dropped(), r.DroppedByShard())
}

// ReadJSONL parses a JSONL event stream written by WriteJSONL,
// returning the events (Meta records excluded), the dropped count, and
// the per-shard drop breakdown from the stream's metadata (nil when
// nothing was dropped).
func ReadJSONL(r io.Reader) ([]Event, int64, map[string]int64, error) {
	var out []Event
	var dropped int64
	var droppedBy map[string]int64
	dec := json.NewDecoder(r)
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, dropped, droppedBy, nil
		} else if err != nil {
			return out, dropped, droppedBy, fmt.Errorf("obs: bad json event %d: %w", len(out), err)
		}
		if Type(je.Type) == Meta {
			dropped += int64(je.Fields["dropped"])
			for k, v := range je.Fields {
				if shard, ok := strings.CutPrefix(k, "dropped:"); ok {
					if droppedBy == nil {
						droppedBy = make(map[string]int64)
					}
					droppedBy[shard] += int64(v)
				}
			}
			continue
		}
		out = append(out, Event{
			Time:   time.Unix(0, je.TimeNs),
			Type:   Type(je.Type),
			Node:   je.Node,
			Peer:   je.Peer,
			Shard:  je.Shard,
			Detail: je.Detail,
			Fields: je.Fields,
		})
	}
}

// RenderEvents formats events as an aligned text log with offsets
// relative to the first event, skipping the given types (typically
// CommitSpan and GaugeSample, which arrive thousands per second).
func RenderEvents(events []Event, skip ...Type) string {
	skipSet := make(map[Type]bool, len(skip))
	for _, t := range skip {
		skipSet[t] = true
	}
	evs := ByTime(events)
	var t0 time.Time
	for _, e := range evs {
		if e.Type != Meta {
			t0 = e.Time
			break
		}
	}
	var b strings.Builder
	for _, e := range evs {
		if e.Type == Meta || skipSet[e.Type] {
			continue
		}
		b.WriteString(e.describe(t0))
		b.WriteByte('\n')
	}
	return b.String()
}
