package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ReportConfig tunes the MTTD/MTTR analyzer.
type ReportConfig struct {
	// RecoveryFraction: throughput counts as recovered once the sampled
	// rate is at least this fraction of the pre-injection baseline
	// (default 0.5).
	RecoveryFraction float64
	// SustainSamples: recovery must hold for this many consecutive
	// gauge samples before it counts — a single lucky window is not a
	// recovery (default 3).
	SustainSamples int
	// BaselineWindow bounds how far before the injection the baseline
	// rate is averaged over (default 2s).
	BaselineWindow time.Duration
}

// WithDefaults fills zero fields.
func (c ReportConfig) WithDefaults() ReportConfig {
	if c.RecoveryFraction <= 0 {
		c.RecoveryFraction = 0.5
	}
	if c.SustainSamples <= 0 {
		c.SustainSamples = 3
	}
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 2 * time.Second
	}
	return c
}

// StageStats is the per-stage commit-pipeline latency over one
// interval of the run: how long entries spent reaching local
// durability, being fanned out, collecting a quorum, and applying.
type StageStats struct {
	Spans     int
	Entries   int
	Append    time.Duration // mean propose → local fsync durable
	Replicate time.Duration // mean propose → fan-out dispatched
	Quorum    time.Duration // mean propose → quorum ack
	Apply     time.Duration // mean quorum ack → applied
	Total     time.Duration // mean propose → applied
}

func (s *StageStats) add(e Event) {
	cnt := int(e.Field("count"))
	if cnt <= 0 {
		cnt = 1
	}
	s.Spans++
	s.Entries += cnt
	s.Append += time.Duration(e.Field("append_us")) * time.Microsecond
	s.Replicate += time.Duration(e.Field("replicate_us")) * time.Microsecond
	s.Quorum += time.Duration(e.Field("quorum_us")) * time.Microsecond
	s.Apply += time.Duration(e.Field("apply_us")) * time.Microsecond
	s.Total += time.Duration(e.Field("total_us")) * time.Microsecond
}

func (s *StageStats) finish() {
	if s.Spans == 0 {
		return
	}
	n := time.Duration(s.Spans)
	s.Append /= n
	s.Replicate /= n
	s.Quorum /= n
	s.Apply /= n
	s.Total /= n
}

// FaultReport pairs one injection with its detection and recovery.
type FaultReport struct {
	Node  string // faulted node
	Fault string // fault name (injection Detail)

	InjectedAt time.Time
	// DetectedAt is the first detection signal after injection: a
	// suspect verdict naming the faulted node, a quarantine of it, or a
	// handoff initiated by it. Zero when nothing detected it.
	DetectedAt time.Time
	DetectedBy Type // which event type detected it
	Detector   string

	// RecoveredAt is the start of the first sustained run of gauge
	// samples at or above RecoveryFraction × baseline after injection.
	// Zero when throughput never sustainedly recovered in the record.
	RecoveredAt time.Time

	// BaselineRate is the mean sampled rate over BaselineWindow before
	// injection; FloorRate the minimum sampled rate between injection
	// and recovery (how hard the fault bit).
	BaselineRate float64
	FloorRate    float64

	// Commit-pipeline breakdown before / during / after the fault.
	Before, During, After StageStats
}

// MTTD is the mean-time-to-detect for this fault (0 if undetected).
func (f *FaultReport) MTTD() time.Duration {
	if f.DetectedAt.IsZero() {
		return 0
	}
	return f.DetectedAt.Sub(f.InjectedAt)
}

// MTTR is the time from injection to sustained throughput recovery
// (0 if unrecovered within the record).
func (f *FaultReport) MTTR() time.Duration {
	if f.RecoveredAt.IsZero() {
		return 0
	}
	return f.RecoveredAt.Sub(f.InjectedAt)
}

// Report is the analyzed view of one recorded event stream.
type Report struct {
	Start, End time.Time
	Events     int
	Dropped    int64
	Faults     []FaultReport

	// Blame is the latest critical-path attribution sample in the
	// stream (nil when the run was not traced): which (node, resource)
	// pairs the tail-promoted request traces blamed, by share.
	Blame       []BlameRow
	BlameTraces int
	BlameTail   int
}

// BlameRow is one (node, resource) row of an attribution sample.
type BlameRow struct {
	Node  string
	Res   string
	Share float64
}

// detectionMatches reports whether e is a detection signal for a
// fault injected into node.
func detectionMatches(e Event, node string) bool {
	switch e.Type {
	case VerdictSuspect:
		return e.Peer == node
	case QuarantineEnter:
		return e.Peer == node
	case HandoffStarted, HandoffDrained:
		// The faulted leader detected itself and began abdicating.
		return e.Node == node
	}
	return false
}

// Analyze pairs every injection in the stream with its first matching
// detection and first sustained throughput recovery, and splits the
// commit-pipeline spans into before/during/after stages per fault.
func Analyze(events []Event, cfg ReportConfig) *Report {
	cfg = cfg.WithDefaults()
	evs := ByTime(events)
	rep := &Report{}
	for _, e := range evs {
		if e.Type == Meta {
			rep.Dropped += int64(e.Field("dropped"))
			continue
		}
		rep.Events++
		if rep.Start.IsZero() {
			rep.Start = e.Time
		}
		rep.End = e.Time
	}

	// Segment the stream by injections: each fault owns the interval
	// from its injection to the next injection (or end of record).
	var injIdx []int
	for i, e := range evs {
		if e.Type == FaultInjected {
			injIdx = append(injIdx, i)
		}
	}
	for k, i := range injIdx {
		inj := evs[i]
		end := len(evs)
		if k+1 < len(injIdx) {
			end = injIdx[k+1]
		}
		fr := FaultReport{Node: inj.Node, Fault: inj.Detail, InjectedAt: inj.Time}

		// Detection: first matching signal in the fault's segment.
		for _, e := range evs[i+1 : end] {
			if detectionMatches(e, inj.Node) {
				fr.DetectedAt = e.Time
				fr.DetectedBy = e.Type
				fr.Detector = e.Node
				break
			}
		}

		// Baseline rate: gauge samples within BaselineWindow before the
		// injection (scanning back past at most the previous segment's
		// recovery tail is fine — the window bounds it).
		var baseSum float64
		var baseN int
		for j := i - 1; j >= 0; j-- {
			e := evs[j]
			if inj.Time.Sub(e.Time) > cfg.BaselineWindow {
				break
			}
			if e.Type == GaugeSample {
				baseSum += e.Field("rate")
				baseN++
			}
		}
		if baseN > 0 {
			fr.BaselineRate = baseSum / float64(baseN)
		}

		// Recovery: first run of SustainSamples consecutive gauge samples
		// at or above RecoveryFraction × baseline, after injection.
		threshold := cfg.RecoveryFraction * fr.BaselineRate
		run := 0
		var runStart time.Time
		floor := -1.0
		for _, e := range evs[i+1 : end] {
			if e.Type != GaugeSample {
				continue
			}
			rate := e.Field("rate")
			if fr.RecoveredAt.IsZero() && (floor < 0 || rate < floor) {
				floor = rate
			}
			if fr.BaselineRate <= 0 {
				continue
			}
			if rate >= threshold {
				if run == 0 {
					runStart = e.Time
				}
				run++
				if run >= cfg.SustainSamples && fr.RecoveredAt.IsZero() {
					fr.RecoveredAt = runStart
				}
			} else {
				run = 0
			}
		}
		if floor >= 0 {
			fr.FloorRate = floor
		}

		// Stage breakdown: before = the baseline window, during =
		// injection → recovery (or segment end), after = recovery →
		// segment end.
		recovered := fr.RecoveredAt
		for _, e := range evs[:end] {
			if e.Type != CommitSpan {
				continue
			}
			switch {
			case e.Time.Before(inj.Time):
				if inj.Time.Sub(e.Time) <= cfg.BaselineWindow {
					fr.Before.add(e)
				}
			case recovered.IsZero() || e.Time.Before(recovered):
				fr.During.add(e)
			default:
				fr.After.add(e)
			}
		}
		fr.Before.finish()
		fr.During.finish()
		fr.After.finish()
		rep.Faults = append(rep.Faults, fr)
	}

	// Attribution: keep only the newest sample — it aggregates the
	// collector's whole retained window, so earlier ones are subsets.
	for i := len(evs) - 1; i >= 0; i-- {
		e := evs[i]
		if e.Type != AttributionSample {
			continue
		}
		rep.BlameTraces = int(e.Field("traces"))
		rep.BlameTail = int(e.Field("tail"))
		for k, v := range e.Fields {
			pair, ok := strings.CutPrefix(k, "blame:")
			if !ok {
				continue
			}
			node, res := pair, "?"
			if j := strings.LastIndexByte(pair, '/'); j >= 0 {
				node, res = pair[:j], pair[j+1:]
			}
			rep.Blame = append(rep.Blame, BlameRow{Node: node, Res: res, Share: v})
		}
		sort.Slice(rep.Blame, func(a, b int) bool {
			if rep.Blame[a].Share != rep.Blame[b].Share {
				return rep.Blame[a].Share > rep.Blame[b].Share
			}
			return rep.Blame[a].Node < rep.Blame[b].Node
		})
		break
	}
	return rep
}

// renderStage formats one stage row.
func renderStage(b *strings.Builder, name string, s StageStats) {
	if s.Spans == 0 {
		fmt.Fprintf(b, "    %-8s %8s\n", name, "(none)")
		return
	}
	fmt.Fprintf(b, "    %-8s %8d %10v %10v %10v %10v %10v\n",
		name, s.Entries,
		s.Append.Round(10*time.Microsecond),
		s.Replicate.Round(10*time.Microsecond),
		s.Quorum.Round(10*time.Microsecond),
		s.Apply.Round(10*time.Microsecond),
		s.Total.Round(10*time.Microsecond))
}

func orDash(d time.Duration) string {
	if d == 0 {
		return "—"
	}
	return d.Round(time.Millisecond).String()
}

// Render formats the report: one block per fault with MTTD, MTTR, the
// rate collapse, and the per-stage commit-latency breakdown.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== MTTD/MTTR report: %d events over %v",
		r.Events, r.End.Sub(r.Start).Round(time.Millisecond))
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped at the recorder limit — stream truncated)", r.Dropped)
	}
	b.WriteString(" ==\n")
	if len(r.Faults) == 0 {
		b.WriteString("no fault injections recorded\n")
		r.renderBlame(&b)
		return b.String()
	}
	for i := range r.Faults {
		f := &r.Faults[i]
		fmt.Fprintf(&b, "\nfault %d: %s on %s at T+%v\n",
			i+1, f.Fault, f.Node, f.InjectedAt.Sub(r.Start).Round(time.Millisecond))
		det := "undetected"
		if !f.DetectedAt.IsZero() {
			det = fmt.Sprintf("%v (%s by %s)", f.MTTD().Round(time.Millisecond), f.DetectedBy, f.Detector)
		}
		rec := "unrecovered"
		if !f.RecoveredAt.IsZero() {
			rec = orDash(f.MTTR())
		}
		fmt.Fprintf(&b, "  MTTD: %-32s MTTR: %s\n", det, rec)
		fmt.Fprintf(&b, "  rate: baseline %.0f op/s, floor %.0f op/s\n", f.BaselineRate, f.FloorRate)
		fmt.Fprintf(&b, "  commit pipeline (mean per stage):\n")
		fmt.Fprintf(&b, "    %-8s %8s %10s %10s %10s %10s %10s\n",
			"window", "entries", "append", "replicate", "quorum", "apply", "total")
		renderStage(&b, "before", f.Before)
		renderStage(&b, "during", f.During)
		renderStage(&b, "after", f.After)
	}
	r.renderBlame(&b)
	return b.String()
}

// renderBlame appends the critical-path attribution table, when the
// stream carried one.
func (r *Report) renderBlame(b *strings.Builder) {
	if len(r.Blame) == 0 {
		return
	}
	fmt.Fprintf(b, "\ncritical-path attribution (%d traces, %d tail-promoted):\n",
		r.BlameTraces, r.BlameTail)
	fmt.Fprintf(b, "    %-10s %-6s %7s\n", "node", "res", "share")
	for _, row := range r.Blame {
		fmt.Fprintf(b, "    %-10s %-6s %6.1f%%\n", row.Node, row.Res, row.Share*100)
	}
}
