# DepFast-Go developer entry points. Everything is plain `go` commands;
# the Makefile just names the common ones.

GO ?= go

.PHONY: all build test race bench examples figures verify clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every table/figure of the paper plus the ablations, as benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate the paper's evaluation from the CLI (a few minutes).
figures:
	$(GO) run ./cmd/depfast-bench -exp all

verify:
	$(GO) run ./cmd/depfast-bench -exp verify

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fastpath
	$(GO) run ./examples/broadcast
	$(GO) run ./examples/spg
	$(GO) run ./examples/kvcluster

clean:
	$(GO) clean ./...
