# DepFast-Go developer entry points. Everything is plain `go` commands;
# the Makefile just names the common ones.

GO ?= go

.PHONY: all check build vet test race bench examples figures verify report-smoke shard-smoke replace-smoke explore-smoke trace-smoke bench-smoke hedge-smoke clean

all: check

# The default gate: compile, vet, test.
check: build vet test

build:
	$(GO) build ./...

# go vet plus depfast-vet, the programming-model analyzer: unbounded
# waits, scheduler blocking, raw goroutines, and framework-split
# violations in logic packages fail the build unless annotated with a
# justified //depfast:allow.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/depfast-vet ./...

test:
	$(GO) test ./...

# Race-detect every package. The seconds-long experiment suites under
# internal/ are where most of the signal is, but the cmd/ and examples/
# trees now carry their own concurrency (REPL spawns, shutdown paths),
# so the whole module runs under the detector.
race:
	$(GO) test -race ./...

# Every table/figure of the paper plus the ablations, as benchmarks.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate the paper's evaluation from the CLI (a few minutes).
figures:
	$(GO) run ./cmd/depfast-bench -exp all

verify:
	$(GO) run ./cmd/depfast-bench -exp verify

# Flight-recorder smoke: a quick mitigated run recorded to a timeline,
# piped through the report tool (non-zero MTTD/MTTR expected).
report-smoke:
	$(GO) run ./cmd/depfast-bench -exp mitigation -quick -timeline /tmp/depfast-timeline.jsonl
	$(GO) run ./cmd/depfast-report /tmp/depfast-timeline.jsonl

# Sharded-KV smoke: the blast-radius containment experiment at CI
# scale — one disk-slow shard leader, per-shard + aggregate table.
shard-smoke:
	$(GO) run ./cmd/depfast-bench -exp shard -quick

# Replacement smoke: a disk-slow follower is detected, quarantined,
# condemned, removed, and replaced by a spare joined as a learner —
# the whole sequence printed from the flight recorder.
replace-smoke:
	$(GO) run ./cmd/depfast-bench -exp replace

# Schedule-explorer smoke: a fixed-seed 50-schedule budget, race-clean,
# covering both topologies and every scenario class (correlated
# domains, asymmetric network, churn-over-fault, storms), all
# invariants green; also emits the exploration throughput benchmark
# (schedules/sec, invariant-check latency) to BENCH_explore.json.
explore-smoke:
	$(GO) run -race ./cmd/depfast-explore -seed 1 -budget 50 -quick -v -bench BENCH_explore.json

# Causal-tracing smoke: run the trace experiment once (disk-slow
# leader, head sampling + tail promotion) and gate on its two
# acceptance numbers — >=90% of tail-promoted traces blame the injected
# (node, resource), and tracing costs <5% throughput.
trace-smoke:
	$(GO) run -race ./cmd/depfast-bench -exp trace -quick

# Raft throughput/latency matrix (conc x value-size) at CI scale,
# emitted to BENCH_raft.json for artifact upload.
bench-smoke:
	$(GO) run ./cmd/depfast-bench -exp raftbench -quick -out BENCH_raft.json

# Request-hedging smoke: a sub-detection-threshold fail-slow episode,
# speculation off vs on, gated on read-tail gain >= 2x, a linearizable
# audit history, zero acked-write loss, and a silent server-side
# detector plane; phase latencies emitted to BENCH_hedge.json.
hedge-smoke:
	$(GO) run -race ./cmd/depfast-bench -exp hedge -quick -out BENCH_hedge.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fastpath
	$(GO) run ./examples/broadcast
	$(GO) run ./examples/spg
	$(GO) run ./examples/kvcluster

clean:
	$(GO) clean ./...
