// Command depfast-bench regenerates the paper's evaluation artifacts:
//
//	depfast-bench -exp table1    # Table 1: fault catalog + measured stretch
//	depfast-bench -exp figure1   # Figure 1: baseline RSMs, normalized
//	depfast-bench -exp figure2   # Figure 2: slowness propagation graph
//	depfast-bench -exp figure3   # Figure 3: DepFastRaft, absolute
//	depfast-bench -exp all       # everything, in paper order
//
// Extension experiments beyond the paper's figures:
//
//	depfast-bench -exp verify    # mechanical fail-slow-tolerance verification
//	depfast-bench -exp transient # fault lands mid-run and clears (timeline)
//	depfast-bench -exp sweep     # client-population capacity sweep
//	depfast-bench -exp intensity # degradation vs fault magnitude curves
//	depfast-bench -exp mitigation # sentinel on/off under a CPU-slow leader
//	depfast-bench -exp shard     # multi-Raft sharded KV: blast-radius containment
//	depfast-bench -exp replace   # automated replacement of a condemned fail-slow node
//	depfast-bench -exp trace     # causal tracing: attribution accuracy + overhead gates
//	depfast-bench -exp hedge     # request hedging under a sub-threshold episode -> BENCH_hedge.json
//	depfast-bench -exp raftbench # concurrency × value-size matrix -> BENCH_raft.json
//
// One-off custom runs:
//
//	depfast-bench -exp run -system BufferRSM -fault net \
//	    -workload "recordcount=1000,readproportion=0.95,updateproportion=0.05"
//
// Runs are scaled for a laptop: seconds per cell instead of the
// paper's minutes per Azure deployment. Shapes — who degrades, by
// roughly what factor, and that DepFastRaft stays within a few
// percent — are the reproduction target, not absolute numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"depfast/internal/clock"
	"depfast/internal/failslow"
	"depfast/internal/harness"
	"depfast/internal/obs"
	"depfast/internal/trace"
	"depfast/internal/ycsb"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|figure1|figure2|figure3|verify|transient|sweep|intensity|mitigation|shard|replace|trace|hedge|raftbench|run|all")
		benchOut = flag.String("out", "BENCH_raft.json", "raftbench/hedge: write the result JSON to this file")
		duration = flag.Duration("duration", 3*time.Second, "measurement window per cell")
		warmup   = flag.Duration("warmup", 750*time.Millisecond, "warmup before measuring")
		clients  = flag.Int("clients", 24, "closed-loop client population")
		records  = flag.Int("records", 2000, "YCSB record population")
		dotOut   = flag.String("dot", "", "write the Figure 2 SPG as Graphviz DOT to this file")
		quiet    = flag.Bool("quiet", false, "suppress per-run progress lines")
		timeline = flag.String("timeline", "", "write the flight-recorder timeline as JSONL to this file (mitigation and run experiments); analyze with depfast-report")
		quick    = flag.Bool("quick", false, "mitigation/shard: shortened single-run variant for smoke testing")

		// -exp run flags.
		system   = flag.String("system", "DepFastRaft", "run: DepFastRaft|SyncRSM|BufferRSM|CallbackRSM")
		faultArg = flag.String("fault", "none", "run: none|cpu|cpucontend|mem|disk|diskcontend|net")
		workload = flag.String("workload", "", "run: YCSB property string or preset name (a-f, paper)")
		nodes    = flag.Int("nodes", 3, "run: cluster size")
	)
	flag.Parse()

	ecfg := harness.DefaultExperimentConfig()
	ecfg.Duration = *duration
	ecfg.Warmup = *warmup
	ecfg.Clients = *clients
	ecfg.Records = *records
	if !*quiet {
		ecfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  "+s) }
	}

	fmt.Printf("depfast-bench: host sleep floor %v (see internal/clock)\n\n",
		clock.SleepFloor().Round(10*time.Microsecond))

	runTable1 := func() {
		fmt.Println(harness.RenderTable1(harness.Table1(failslow.DefaultIntensity())))
	}
	runFigure1 := func() {
		fig, err := harness.Figure1(ecfg)
		exitOn(err)
		fmt.Println(fig.Render(true))
		for _, g := range fig.Order {
			fmt.Printf("max drift %-12s: %5.1f%%\n", g, fig.MaxDrift(g)*100)
		}
		fmt.Println()
	}
	runFigure2 := func() {
		g, col, err := harness.Figure2(30*time.Second, 40)
		exitOn(err)
		fmt.Println("== Figure 2: slowness propagation graph (3 shards, 3 clients) ==")
		fmt.Println(g.ASCII())
		fmt.Println(trace.Report(col.Records(), trace.VerifyConfig{AllowClientPrefix: "c"}))
		if *dotOut != "" {
			exitOn(os.WriteFile(*dotOut, []byte(g.DOT()), 0o644))
			fmt.Printf("DOT written to %s\n", *dotOut)
		}
		fmt.Println()
	}
	runFigure3 := func() {
		fig, err := harness.Figure3(ecfg)
		exitOn(err)
		fmt.Println(fig.Render(false))
		for _, g := range fig.Order {
			fmt.Printf("max drift %-12s: %5.1f%% (paper claim: within 5%%)\n",
				g, fig.MaxDrift(g)*100)
		}
		fmt.Println()
	}

	runVerify := func() {
		results, err := harness.VerifySystems(ecfg, []harness.System{
			harness.DepFastRaft, harness.SyncRSM, harness.BufferRSM, harness.CallbackRSM,
		})
		exitOn(err)
		fmt.Println("== Runtime verification: fail-slow-tolerance discipline ==")
		fmt.Println(harness.RenderVerify(results))
		fmt.Println("(SyncRSM's synchronous disk reads bypass the event abstraction")
		fmt.Println(" and are invisible to event-based verification — the paper's")
		fmt.Println(" argument for routing every wait through an event.)")
		fmt.Println()
	}
	runTransient := func() {
		fmt.Println("== Transient fault timeline (network slowness on one follower) ==")
		for _, sys := range []harness.System{harness.DepFastRaft, harness.CallbackRSM} {
			cfg := harness.DefaultRunConfig(sys)
			cfg.Clients = *clients
			cfg.Fault = failslow.NetSlow
			res, err := harness.RunTransient(cfg, 4*time.Second, 500*time.Millisecond,
				1200*time.Millisecond, 1500*time.Millisecond)
			exitOn(err)
			fmt.Println(res.Render())
		}
	}
	runIntensity := func() {
		delays := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
			40 * time.Millisecond, 80 * time.Millisecond}
		res, err := harness.IntensitySweep(ecfg,
			[]harness.System{harness.DepFastRaft, harness.SyncRSM, harness.BufferRSM, harness.CallbackRSM},
			delays)
		exitOn(err)
		fmt.Println(res.Render())
	}
	// The flight recorder is shared by every run the invocation makes,
	// so a -timeline file holds one continuous event stream.
	var recorder *obs.Recorder
	if *timeline != "" {
		recorder = obs.NewRecorder(0)
	}

	runMitigation := func() {
		if *quick {
			fmt.Println("== Mitigation sentinel (quick: leader cpu-slow, sentinel on) ==")
			cfg := harness.DefaultMitigationRunConfig()
			cfg.Recorder = recorder
			res, err := harness.RunMitigation(cfg)
			exitOn(err)
			fmt.Println(res)
			return
		}
		fmt.Println("== Mitigation sentinel on/off ==")
		out, err := harness.MitigationExperimentRecorded(recorder)
		exitOn(err)
		fmt.Println(out)
	}
	runSharded := func() {
		fmt.Println("== Sharded KV: blast-radius containment (disk-slow shard leader) ==")
		cfg := harness.DefaultShardedRunConfig()
		if *quick {
			cfg = harness.QuickShardedRunConfig()
		}
		cfg.Recorder = recorder
		res, err := harness.RunSharded(cfg)
		exitOn(err)
		fmt.Println(res.Render())
	}
	runReplace := func() {
		fmt.Println("== Automated replacement (disk-slow follower condemned, spare joined) ==")
		out, err := harness.ReplacementExperimentRecorded(recorder)
		exitOn(err)
		fmt.Println(out)
	}
	runSweep := func() {
		fmt.Println("== Client-population sweep (DepFastRaft, healthy) ==")
		counts := []int{4, 8, 16, 32, 64}
		cfg := harness.DefaultRunConfig(harness.DepFastRaft)
		cfg.Duration = *duration
		cfg.Warmup = *warmup
		results, err := harness.Sweep(cfg, counts)
		exitOn(err)
		fmt.Println(harness.RenderSweep(results, counts))
	}

	runTrace := func() {
		fmt.Println("== Causal tracing: attribution accuracy + overhead (leader disk-slow) ==")
		cfg := harness.DefaultTraceExpConfig()
		if *quick {
			cfg.OverheadTrials = 1
		}
		res, err := harness.RunTraceExperiment(cfg)
		exitOn(err)
		fmt.Println(res)
		fmt.Println(res.Attribution.Render())
		failed := false
		if res.MatchFraction < 0.9 {
			fmt.Fprintf(os.Stderr, "FAIL: only %.0f%% of tail-promoted traces blame (leader, disk); gate is 90%%\n",
				res.MatchFraction*100)
			failed = true
		}
		if res.OverheadRatio > 0 && res.OverheadRatio < 0.95 {
			fmt.Fprintf(os.Stderr, "FAIL: tracing costs %.1f%% throughput; gate is 5%%\n",
				(1-res.OverheadRatio)*100)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("gates: attribution >= 90% matched, tracing overhead < 5% — both hold")
		fmt.Println()
	}
	runHedge := func() {
		fmt.Println("== Request hedging under a sub-threshold fail-slow episode ==")
		cfg := harness.DefaultHedgeConfig()
		if *quick {
			cfg = harness.QuickHedgeConfig()
		}
		cfg.Recorder = recorder
		res, err := harness.RunHedge(cfg)
		exitOn(err)
		fmt.Println(res)
		failed := false
		if res.ReadGain < 2 {
			fmt.Fprintf(os.Stderr, "FAIL: hedged read p99 only %.2fx better than unhedged; gate is 2x\n",
				res.ReadGain)
			failed = true
		}
		if res.Lin.Verdict == harness.LinViolation {
			fmt.Fprintf(os.Stderr, "FAIL: hedged history not linearizable (key %q, %d ops)\n",
				res.Lin.Key, res.Lin.Ops)
			failed = true
		}
		if res.AckedLoss != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %d acked writes lost under speculation\n", res.AckedLoss)
			failed = true
		}
		if res.HealthyWastedRate > res.BudgetRatio {
			fmt.Fprintf(os.Stderr, "FAIL: healthy-window wasted-hedge rate %.3f exceeds budget ratio %.2f\n",
				res.HealthyWastedRate, res.BudgetRatio)
			failed = true
		}
		if res.SuspectEvents != 0 || res.ElectionsDelta != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: episode leaked into the server plane (suspects=%d elections=%d); it must stay sub-threshold\n",
				res.SuspectEvents, res.ElectionsDelta)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		out := map[string]any{
			"name": "hedge",
			"cells": []map[string]any{
				{"phase": "healthy-hedged", "read_p99_us": res.Healthy.ReadP99.Seconds() * 1e6,
					"write_p99_us": res.Healthy.WriteP99.Seconds() * 1e6, "tput": res.Healthy.Tput},
				{"phase": "episode-unhedged", "read_p99_us": res.Unhedged.ReadP99.Seconds() * 1e6,
					"write_p99_us": res.Unhedged.WriteP99.Seconds() * 1e6, "tput": res.Unhedged.Tput},
				{"phase": "episode-hedged", "read_p99_us": res.Hedged.ReadP99.Seconds() * 1e6,
					"write_p99_us": res.Hedged.WriteP99.Seconds() * 1e6, "tput": res.Hedged.Tput},
			},
			"read_gain":           res.ReadGain,
			"fired":               res.Fired,
			"won":                 res.Won,
			"wasted":              res.Wasted,
			"put_retries":         res.PutRetries,
			"healthy_wasted_rate": res.HealthyWastedRate,
			"lin_verdict":         res.Lin.Verdict.String(),
			"acked_loss":          res.AckedLoss,
		}
		b, err := json.MarshalIndent(out, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*benchOut, append(b, '\n'), 0o644))
		fmt.Printf("gates: read p99 gain >= 2x, linearizable, zero acked-write loss,\n"+
			"       wasted rate <= budget, server plane silent — all hold\n"+
			"hedge results written to %s\n\n", *benchOut)
	}
	runRaftBench := func() {
		fmt.Println("== DepFastRaft healthy throughput/latency matrix ==")
		type cell struct {
			Conc   int     `json:"conc"`
			Bytes  int     `json:"bytes"`
			Tput   float64 `json:"tput"`
			P50us  float64 `json:"p50_us"`
			P99us  float64 `json:"p99_us"`
			Errors int64   `json:"errors"`
		}
		dur, warm := *duration, *warmup
		if *quick {
			dur, warm = 1*time.Second, 300*time.Millisecond
		}
		var cells []cell
		for _, conc := range []int{8, 32} {
			for _, bytes := range []int{16, 256} {
				cfg := harness.DefaultRunConfig(harness.DepFastRaft)
				cfg.Clients = conc
				cfg.Records = *records
				cfg.ValueSize = bytes
				cfg.Duration = dur
				cfg.Warmup = warm
				wl := ycsb.PaperWrite(*records, bytes)
				cfg.Workload = &wl
				res, err := harness.Run(cfg)
				exitOn(err)
				fmt.Printf("  conc=%-3d bytes=%-4d tput=%8.0f op/s  p50=%8v  p99=%8v\n",
					conc, bytes, res.Throughput,
					res.P50.Round(10*time.Microsecond), res.P99.Round(10*time.Microsecond))
				cells = append(cells, cell{
					Conc: conc, Bytes: bytes, Tput: res.Throughput,
					P50us: res.P50.Seconds() * 1e6, P99us: res.P99.Seconds() * 1e6,
					Errors: res.Errors,
				})
			}
		}
		out := map[string]any{"name": "raft", "cells": cells}
		b, err := json.MarshalIndent(out, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*benchOut, append(b, '\n'), 0o644))
		fmt.Printf("bench matrix written to %s\n\n", *benchOut)
	}

	runCustom := func() {
		sys, err := systemByName(*system)
		exitOn(err)
		fault, err := faultByName(*faultArg)
		exitOn(err)
		cfg := harness.DefaultRunConfig(sys)
		cfg.Nodes = *nodes
		cfg.FaultFollowers = (*nodes - 1) / 2
		cfg.Duration = *duration
		cfg.Warmup = *warmup
		cfg.Clients = *clients
		cfg.Records = *records
		cfg.Fault = fault
		cfg.Recorder = recorder
		if *workload != "" {
			wl, err := ycsb.Preset(*workload)
			if err != nil {
				wl, err = ycsb.Parse(*workload)
				exitOn(err)
			}
			cfg.Workload = &wl
		}
		res, err := harness.RunStable(cfg, 3)
		exitOn(err)
		fmt.Println(res)
	}

	switch *exp {
	case "run":
		runCustom()
	case "table1":
		runTable1()
	case "figure1":
		runFigure1()
	case "figure2", "spg":
		runFigure2()
	case "figure3":
		runFigure3()
	case "verify":
		runVerify()
	case "transient":
		runTransient()
	case "sweep":
		runSweep()
	case "intensity":
		runIntensity()
	case "mitigation":
		runMitigation()
	case "shard":
		runSharded()
	case "replace":
		runReplace()
	case "trace":
		runTrace()
	case "hedge":
		runHedge()
	case "raftbench":
		runRaftBench()
	case "all":
		runTable1()
		runFigure1()
		runFigure2()
		runFigure3()
		runVerify()
		runTransient()
		runSweep()
		runIntensity()
		runMitigation()
		runSharded()
		runReplace()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	if recorder != nil {
		f, err := os.Create(*timeline)
		exitOn(err)
		err = obs.WriteRecorderJSONL(f, recorder)
		exitOn(err)
		exitOn(f.Close())
		fmt.Printf("timeline: %d events written to %s (analyze with: depfast-report %s)\n",
			recorder.Len(), *timeline, *timeline)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "depfast-bench:", err)
		os.Exit(1)
	}
}

func systemByName(name string) (harness.System, error) {
	switch strings.ToLower(name) {
	case "depfastraft", "depfast":
		return harness.DepFastRaft, nil
	case "syncrsm", "sync":
		return harness.SyncRSM, nil
	case "bufferrsm", "buffer":
		return harness.BufferRSM, nil
	case "callbackrsm", "callback":
		return harness.CallbackRSM, nil
	}
	return 0, fmt.Errorf("unknown system %q", name)
}

func faultByName(name string) (failslow.Fault, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return failslow.None, nil
	case "cpu":
		return failslow.CPUSlow, nil
	case "cpucontend":
		return failslow.CPUContention, nil
	case "mem":
		return failslow.MemContention, nil
	case "disk":
		return failslow.DiskSlow, nil
	case "diskcontend":
		return failslow.DiskContention, nil
	case "net":
		return failslow.NetSlow, nil
	}
	return 0, fmt.Errorf("unknown fault %q", name)
}
