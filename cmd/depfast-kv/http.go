package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"depfast/internal/metrics"
	"depfast/internal/xtrace"
)

// obsPlane is the node's live observability surface: the metrics
// registry and trace collector a running server feeds, scraped over
// plain HTTP so any curl/jq pipeline can watch a deployment without
// stopping it.
//
//	GET /metrics      counters, gauges, windowed latency histograms,
//	                  and the trace collector's sampling counters
//	GET /traces       every kept trace (head-sampled + tail-promoted),
//	                  full span trees
//	GET /traces?tail=1  only the tail-promoted (slow) traces
//	GET /attribution  critical-path blame table over the promoted
//	                  tail (falls back to all kept traces when the
//	                  deployment is healthy and nothing was promoted)
type obsPlane struct {
	node string
	reg  *metrics.Registry
	col  *xtrace.Collector
}

// serveObs binds the observability endpoints on addr and serves them
// in the background. Returns the bound address.
func serveObs(addr string, p obsPlane) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", p.handleMetrics)
	mux.HandleFunc("/traces", p.handleTraces)
	mux.HandleFunc("/attribution", p.handleAttribution)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

func (p obsPlane) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"node":    p.node,
		"metrics": p.reg.Snapshot(),
		"tracing": p.col.Stats(),
	})
}

func (p obsPlane) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := p.col.Traces()
	if r.URL.Query().Get("tail") != "" {
		traces = p.col.TailTraces()
	}
	writeJSON(w, map[string]any{
		"node":   p.node,
		"count":  len(traces),
		"traces": traces,
	})
}

func (p obsPlane) handleAttribution(w http.ResponseWriter, r *http.Request) {
	att := xtrace.Attribute(p.col.TailTraces())
	source := "tail"
	if att.Traces == 0 {
		att = xtrace.Attribute(p.col.Traces())
		source = "kept"
	}
	writeJSON(w, map[string]any{
		"node":   p.node,
		"source": source,
		"blame":  att,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
