// Command depfast-kv runs a DepFastRaft node (or client) over real
// TCP, for multi-process deployments.
//
// Start a three-node cluster in three shells:
//
//	depfast-kv -node s1 -listen 127.0.0.1:7001 -peers s1=127.0.0.1:7001,s2=127.0.0.1:7002,s3=127.0.0.1:7003
//	depfast-kv -node s2 -listen 127.0.0.1:7002 -peers s1=127.0.0.1:7001,s2=127.0.0.1:7002,s3=127.0.0.1:7003
//	depfast-kv -node s3 -listen 127.0.0.1:7003 -peers s1=127.0.0.1:7001,s2=127.0.0.1:7002,s3=127.0.0.1:7003
//
// Then talk to it:
//
//	depfast-kv -client -peers s1=127.0.0.1:7001,s2=127.0.0.1:7002,s3=127.0.0.1:7003
//	> put greeting hello
//	> get greeting
//	hello
//
// A node can be made fail-slow at runtime by sending SIGUSR-style
// commands through the REPL's "fault" verb when started with -chaos.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"depfast/internal/core"
	"depfast/internal/env"
	"depfast/internal/failslow"
	"depfast/internal/metrics"
	"depfast/internal/raft"
	"depfast/internal/rpc"
	"depfast/internal/storage"
	"depfast/internal/transport"
	"depfast/internal/xtrace"
)

func main() {
	var (
		node     = flag.String("node", "", "node name (server mode)")
		listen   = flag.String("listen", "", "listen address (server mode)")
		peersArg = flag.String("peers", "", "comma-separated name=addr pairs for all nodes")
		client   = flag.Bool("client", false, "run the interactive client instead of a server")
		fault    = flag.String("fault", "", "inject a fail-slow fault into this node at startup: cpu|cpucontend|disk|diskcontend|mem|net")
		dataDir  = flag.String("data", "", "directory for durable Raft state (enables crash recovery)")
		metricsL = flag.String("metrics", "", "serve the live observability plane (/metrics, /traces, /attribution) on this address (server mode)")
	)
	flag.Parse()

	peers, addrs, err := parsePeers(*peersArg)
	if err != nil {
		fail(err)
	}

	if *client {
		runClient(peers, addrs)
		return
	}
	if *node == "" || *listen == "" {
		fail(fmt.Errorf("server mode needs -node and -listen (or use -client)"))
	}
	runServer(*node, *listen, peers, addrs, *fault, *dataDir, *metricsL)
}

func parsePeers(arg string) ([]string, map[string]string, error) {
	if arg == "" {
		return nil, nil, fmt.Errorf("-peers is required")
	}
	addrs := make(map[string]string)
	var names []string
	for _, pair := range strings.Split(arg, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad peer %q (want name=addr)", pair)
		}
		names = append(names, name)
		addrs[name] = addr
	}
	sort.Strings(names)
	return names, addrs, nil
}

func runServer(node, listen string, peers []string, addrs map[string]string, fault, dataDir, metricsAddr string) {
	tr := transport.NewTCP()
	defer tr.Close()

	cfg := raft.DefaultConfig(node, peers)
	cfg.ElectionTimeoutMin = 300 * time.Millisecond
	cfg.ElectionTimeoutMax = 600 * time.Millisecond
	cfg.HeartbeatInterval = 75 * time.Millisecond

	// The node always keeps its live observability plane — bounded
	// always-on head sampling plus tail promotion of slow requests —
	// whether or not anyone is scraping it; -metrics only decides
	// whether it is reachable over HTTP.
	reg := metrics.NewRegistry(0, 0)
	col := xtrace.NewCollector(xtrace.Config{})
	cfg.Metrics = reg
	cfg.Tracer = col

	e := env.New(node, env.DefaultConfig())
	if fault != "" {
		f, err := faultByName(fault)
		if err != nil {
			fail(err)
		}
		failslow.Apply(e, f, failslow.DefaultIntensity())
		fmt.Printf("%s: injected %v at startup\n", node, f)
	}
	var srv *raft.Server
	if dataDir != "" {
		fs, err := storage.OpenFileStore(dataDir)
		if err != nil {
			fail(err)
		}
		defer fs.Close()
		cfg.Persister = fs
		srv, err = raft.RecoverServer(cfg, e, tr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: recovered durable state from %s\n", node, dataDir)
	} else {
		srv = raft.NewServer(cfg, e, tr)
	}

	bound, err := tr.Listen(node, listen, srv.TransportHandler())
	if err != nil {
		fail(err)
	}
	for name, addr := range addrs {
		if name != node {
			tr.AddPeer(name, addr)
		}
	}
	srv.Start()
	fmt.Printf("%s: serving on %s, peers %v\n", node, bound, peers)
	if metricsAddr != "" {
		obsBound, err := serveObs(metricsAddr, obsPlane{node: node, reg: reg, col: col})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: observability plane on http://%s (/metrics /traces /attribution)\n", node, obsBound)
	}

	// Periodic status line until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			term, role, leader := srv.Status()
			commit, applied := srv.CommitInfo()
			fmt.Printf("%s: term=%d role=%v leader=%s commit=%d applied=%d\n",
				node, term, role, leader, commit, applied)
		case <-sig:
			fmt.Printf("%s: shutting down\n", node)
			srv.Stop()
			return
		}
	}
}

func faultByName(name string) (failslow.Fault, error) {
	switch name {
	case "cpu":
		return failslow.CPUSlow, nil
	case "cpucontend":
		return failslow.CPUContention, nil
	case "disk":
		return failslow.DiskSlow, nil
	case "diskcontend":
		return failslow.DiskContention, nil
	case "mem":
		return failslow.MemContention, nil
	case "net":
		return failslow.NetSlow, nil
	}
	return failslow.None, fmt.Errorf("unknown fault %q", name)
}

func runClient(peers []string, addrs map[string]string) {
	tr := transport.NewTCP()
	defer tr.Close()
	rt := core.NewRuntime("client-cli")
	defer rt.Stop()
	ep := rpc.NewEndpoint("client-cli", rt, tr, rpc.WithCallTimeout(5*time.Second))
	defer ep.Close()
	if _, err := tr.Listen("client-cli", "127.0.0.1:0", ep.TransportHandler()); err != nil {
		fail(err)
	}
	for name, addr := range addrs {
		tr.AddPeer(name, addr)
	}
	cl := raft.NewClient(uint64(os.Getpid()), ep, peers, 5*time.Second)
	// Trace every REPL operation: the TraceID rides the wire, so the
	// server-side commit pipeline appears under the same trace on the
	// serving node's /traces endpoint.
	cl.SetTracer(xtrace.NewCollector(xtrace.Config{SampleEvery: 1}))

	fmt.Println("commands: get <k> | put <k> <v> | del <k> | scan <k> <n> | quit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		parts := strings.Fields(sc.Text())
		if len(parts) == 0 {
			continue
		}
		if parts[0] == "quit" || parts[0] == "exit" {
			return
		}
		out := make(chan string, 1)
		ok := rt.Spawn("cmd", func(co *core.Coroutine) {
			//depfast:allow deadline-propagation single send into a dedicated 1-buffered channel: cannot block
			out <- execute(co, cl, parts)
		})
		if !ok {
			return
		}
		fmt.Println(<-out)
	}
}

func execute(co *core.Coroutine, cl *raft.Client, parts []string) string {
	switch parts[0] {
	case "get":
		if len(parts) != 2 {
			return "usage: get <key>"
		}
		v, found, err := cl.Get(co, parts[1])
		if err != nil {
			return "error: " + err.Error()
		}
		if !found {
			return "(not found)"
		}
		return string(v)
	case "put":
		if len(parts) < 3 {
			return "usage: put <key> <value>"
		}
		if err := cl.Put(co, parts[1], []byte(strings.Join(parts[2:], " "))); err != nil {
			return "error: " + err.Error()
		}
		return "ok"
	case "del":
		if len(parts) != 2 {
			return "usage: del <key>"
		}
		found, err := cl.Delete(co, parts[1])
		if err != nil {
			return "error: " + err.Error()
		}
		if !found {
			return "(not found)"
		}
		return "deleted"
	case "scan":
		if len(parts) != 3 {
			return "usage: scan <key> <n>"
		}
		n := 0
		fmt.Sscanf(parts[2], "%d", &n)
		pairs, err := cl.Scan(co, parts[1], n)
		if err != nil {
			return "error: " + err.Error()
		}
		var b strings.Builder
		for _, p := range pairs {
			fmt.Fprintf(&b, "%s = %s\n", p.Key, p.Value)
		}
		if b.Len() == 0 {
			return "(empty)"
		}
		return strings.TrimRight(b.String(), "\n")
	}
	return "unknown command"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "depfast-kv:", err)
	os.Exit(1)
}
