// Command depfast-explore is the deterministic fail-slow schedule
// explorer: it enumerates fault schedules from a seed, drives a full
// cluster (single raft group or sharded deployment) through each one
// under an audit client population, and checks run invariants after
// every schedule — linearizability of acked operations, zero
// acked-write loss, blast-radius containment, sentinel convergence.
// Failing schedules are shrunk to a minimal repro whose one-line spec
// replays byte-for-byte.
//
//	depfast-explore -seed 1 -budget 200              # explore
//	depfast-explore -seed 1 -budget 50 -quick -v     # CI smoke
//	depfast-explore -replay "seed=3 topo=raft steps=5 | disk@1 s1,s3 x1"
//	depfast-explore -replay "<spec>" -shrink         # minimize a failure
//	depfast-explore -broken -budget 2 -shrink        # sentinel self-test
//
// Exit status is 1 when any schedule violated an invariant, so the
// broken self-test is asserted with `! depfast-explore -broken ...`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"depfast/internal/explore"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "schedule enumeration seed")
		budget = flag.Int("budget", 50, "distinct schedules to explore")
		steps  = flag.Int("steps", 6, "logical steps per schedule")
		replay = flag.String("replay", "", "run this replay spec instead of exploring")
		shrink = flag.Bool("shrink", false, "shrink failing schedules to a minimal repro")
		broken = flag.Bool("broken", false, "use the deliberately mis-tuned sentinel (self-test: failures expected)")
		quick  = flag.Bool("quick", false, "CI-scale runs: shorter steps and audit population")
		asJSON = flag.Bool("json", false, "emit the report as JSON")
		bench  = flag.String("bench", "", "write exploration throughput benchmark JSON to this file")
		verb   = flag.Bool("v", false, "print each verdict as it lands")
	)
	flag.Parse()

	cfg := explore.RunnerConfig{}
	if *quick {
		cfg.StepDur = 50 * time.Millisecond
		cfg.AuditClients = 2
		cfg.Keys = 2
	}
	if *broken {
		cfg.Broken = true
		// Broken runs fail convergence by timeout; keep that cheap.
		cfg.ConvergeWait = 3 * time.Second
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, cfg, *shrink, *asJSON))
	}
	os.Exit(runExplore(*seed, *budget, *steps, cfg, *shrink, *asJSON, *verb, *bench))
}

// runReplay executes one spec (optionally shrinking a failure) and
// returns the process exit code.
func runReplay(spec string, cfg explore.RunnerConfig, shrink, asJSON bool) int {
	s, err := explore.Parse(spec)
	exitOn(err)
	v, err := explore.Run(s, cfg)
	exitOn(err)
	if !v.Pass && shrink {
		min, mv, ok := explore.ShrinkFailure(s, cfg)
		if ok {
			fmt.Fprintf(os.Stderr, "shrunk to %d event(s): %s\n", len(min.Events), min.Spec())
			v = mv
		} else {
			fmt.Fprintln(os.Stderr, "failure did not reproduce; reporting the original run")
		}
	}
	if asJSON {
		printJSON(verdictJSON(v))
	} else {
		fmt.Println(v)
	}
	if v.Pass {
		return 0
	}
	return 1
}

// runExplore runs the budget and returns the process exit code.
func runExplore(seed int64, budget, steps int, cfg explore.RunnerConfig, shrink, asJSON, verb bool, benchPath string) int {
	onVerdict := func(i int, v explore.Verdict) {
		if verb {
			fmt.Fprintf(os.Stderr, "[%3d] %s\n", i, v)
		}
	}
	rep, err := explore.Explore(seed, budget, steps, cfg, onVerdict)
	exitOn(err)

	type shrunk struct {
		Spec     string   `json:"spec"`
		Events   int      `json:"events"`
		Failures []string `json:"failures"`
	}
	var minimal []shrunk
	if shrink {
		for _, f := range rep.Failures {
			min, mv, ok := explore.ShrinkFailure(f.Schedule, cfg)
			if !ok {
				fmt.Fprintf(os.Stderr, "failure did not reproduce, not shrinking: %s\n", f.Spec)
				continue
			}
			minimal = append(minimal, shrunk{Spec: min.Spec(), Events: len(min.Events), Failures: mv.Failures})
			fmt.Fprintf(os.Stderr, "shrunk to %d event(s): %s\n", len(min.Events), min.Spec())
		}
	}

	if asJSON {
		out := map[string]any{
			"seed":              rep.Seed,
			"schedules":         len(rep.Verdicts),
			"failed":            len(rep.Failures),
			"by_class":          rep.ByClass,
			"elapsed_ms":        rep.Elapsed.Milliseconds(),
			"check_ms":          rep.CheckDur.Milliseconds(),
			"schedules_per_sec": rep.SchedulesPerSec(),
			"coverage":          coverageJSON(rep.Coverage),
		}
		var vs []map[string]any
		for _, v := range rep.Verdicts {
			vs = append(vs, verdictJSON(v))
		}
		out["verdicts"] = vs
		if minimal != nil {
			out["shrunk"] = minimal
		}
		printJSON(out)
	} else {
		fmt.Print(rep)
	}

	if benchPath != "" {
		writeBench(benchPath, rep)
	}
	if rep.Passed() {
		return 0
	}
	return 1
}

// verdictJSON flattens one verdict for machine consumers.
func verdictJSON(v explore.Verdict) map[string]any {
	return map[string]any{
		"spec":        v.Spec,
		"class":       v.Schedule.Class,
		"pass":        v.Pass,
		"failures":    v.Failures,
		"ops":         v.Ops,
		"acked":       v.Acked,
		"lost":        v.Lost,
		"lin":         v.Lin.Verdict.String(),
		"lin_states":  v.Lin.States,
		"churned":     v.Churned,
		"transitions": coverageJSON(v.Transitions),
		"elapsed_ms":  v.Elapsed.Milliseconds(),
		"check_ms":    v.CheckDur.Seconds() * 1000,
	}
}

// coverageJSON renders a transition tally with every vocabulary kind
// present, zeros included — coverage is about what was NOT exercised.
func coverageJSON(tally map[string]int) map[string]int {
	out := make(map[string]int, len(explore.TransitionKinds))
	for _, kind := range explore.TransitionKinds {
		out[kind] = tally[kind]
	}
	return out
}

// writeBench records the exploration perf trajectory point CI tracks:
// throughput and invariant-check latency.
func writeBench(path string, rep explore.Report) {
	n := len(rep.Verdicts)
	checkMS := rep.CheckDur.Seconds() * 1000
	checkMean := 0.0
	if n > 0 {
		checkMean = checkMS / float64(n)
	}
	out := map[string]any{
		"name":              "explore",
		"seed":              rep.Seed,
		"schedules":         n,
		"elapsed_sec":       rep.Elapsed.Seconds(),
		"schedules_per_sec": rep.SchedulesPerSec(),
		"check_ms_total":    checkMS,
		"check_ms_mean":     checkMean,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	exitOn(err)
	exitOn(os.WriteFile(path, append(b, '\n'), 0o644))
	fmt.Fprintf(os.Stderr, "bench written to %s\n", path)
}

func printJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	exitOn(err)
	fmt.Println(string(b))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "depfast-explore:", err)
		os.Exit(2)
	}
}
