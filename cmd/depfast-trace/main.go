// Command depfast-trace analyzes exported wait traces (JSON lines, as
// written by depfast-spg -json or trace.WriteJSON): it rebuilds the
// slowness propagation graph, verifies the fail-slow-tolerance
// discipline, and prints the per-(node, kind) wait breakdown.
//
//	depfast-trace -in run.jsonl -breakdown -verify -spg
package main

import (
	"flag"
	"fmt"
	"os"

	"depfast/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "JSON-lines trace file (required)")
		spg       = flag.Bool("spg", true, "print the slowness propagation graph")
		breakdown = flag.Bool("breakdown", true, "print the per-node wait breakdown")
		verify    = flag.Bool("verify", true, "run the fail-slow-tolerance verifier")
		clients   = flag.String("client-prefix", "client", "node prefix exempt from the singular-wait rule")
		dotOut    = flag.String("dot", "", "write the SPG as Graphviz DOT to this file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	exitOn(err)
	defer f.Close()
	records, err := trace.ReadJSON(f)
	exitOn(err)
	fmt.Printf("%d wait records from %s\n\n", len(records), *in)

	if *spg {
		g := trace.BuildSPG(records)
		fmt.Println("slowness propagation graph:")
		fmt.Println(g.ASCII())
		if *dotOut != "" {
			exitOn(os.WriteFile(*dotOut, []byte(g.DOT()), 0o644))
			fmt.Printf("DOT written to %s\n\n", *dotOut)
		}
	}
	if *breakdown {
		fmt.Println("wait breakdown:")
		fmt.Println(trace.RenderBreakdown(trace.Breakdown(records)))
	}
	if *verify {
		fmt.Println(trace.Report(records, trace.VerifyConfig{AllowClientPrefix: *clients}))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "depfast-trace:", err)
		os.Exit(1)
	}
}
