// Command depfast-spg runs a traced DepFastRaft deployment and emits
// its slowness propagation graph (the paper's Figure 2) as an ASCII
// table and optionally Graphviz DOT, together with the fail-slow
// fault-tolerance verification report.
//
//	depfast-spg -ops 50 -dot spg.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"depfast/internal/harness"
	"depfast/internal/trace"
)

func main() {
	var (
		ops     = flag.Int("ops", 40, "operations per client")
		timeout = flag.Duration("timeout", 60*time.Second, "overall deadline")
		dotOut  = flag.String("dot", "", "write Graphviz DOT to this file")
		jsonOut = flag.String("json", "", "write the raw wait records as JSON lines to this file (analyze with depfast-trace)")
	)
	flag.Parse()

	g, col, err := harness.Figure2(*timeout, *ops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "depfast-spg:", err)
		os.Exit(1)
	}
	fmt.Println("slowness propagation graph (3 shards s1-s9, clients c1-c3):")
	fmt.Println(g.ASCII())
	fmt.Println(trace.Report(col.Records(), trace.VerifyConfig{AllowClientPrefix: "c"}))
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(g.DOT()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "depfast-spg:", err)
			os.Exit(1)
		}
		fmt.Printf("DOT written to %s\n", *dotOut)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "depfast-spg:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteJSON(f, col.Records()); err != nil {
			fmt.Fprintln(os.Stderr, "depfast-spg:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *jsonOut)
	}
}
