// Command depfast-vet statically enforces the DepFast programming
// model over this module: bounded quorum-shaped waits, no scheduler
// blocking inside coroutines, logic behind the framework split — and,
// interprocedurally over the module call graph, deadline propagation
// along every blocking path, consistent locksets, and a cycle-free
// lock-acquisition order. It is built entirely on the standard
// library's go/ast, go/parser, go/types, and go/token — no external
// analysis frameworks.
//
// Usage:
//
//	depfast-vet [flags] [./...]
//
// The module containing the working directory (or -dir) is always
// analyzed as a whole; the ./... argument is accepted for familiarity.
// Exit status is 1 when the run should fail the build (new or
// unsuppressed error findings; warnings too under -werror), 2 on load
// errors.
//
// Flags:
//
//	-json            machine-readable report (includes suppressed findings)
//	-sarif           SARIF 2.1.0 report for code-scanning consumers
//	-checks s        comma-separated subset of checks to run
//	-list            list the checks and exit
//	-suppressed      show //depfast:allow'd findings in text output
//	-dir d           directory inside the module to analyze (default ".")
//	-baseline f      enforce a recorded baseline: only NEW findings fail
//	-write-baseline f  snapshot current findings as the baseline and exit
//	-diff ref        only findings in files changed since the git ref fail
//	-werror          treat warning-severity findings as build-failing
//	-v               print best-effort type-check diagnostics to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"depfast/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit the machine-readable JSON report")
		sarifOut   = flag.Bool("sarif", false, "emit a SARIF 2.1.0 report")
		checkNames = flag.String("checks", "", "comma-separated checks to run (default: all)")
		list       = flag.Bool("list", false, "list available checks and exit")
		suppressed = flag.Bool("suppressed", false, "show allowed findings in text output")
		dir        = flag.String("dir", ".", "directory inside the module to analyze")
		baseline   = flag.String("baseline", "", "baseline file to enforce (only new findings fail)")
		writeBase  = flag.String("write-baseline", "", "write the current findings as a baseline file and exit")
		diffRef    = flag.String("diff", "", "git ref: only findings in files changed since it fail")
		werror     = flag.Bool("werror", false, "warning-severity findings fail the build")
		verbose    = flag.Bool("v", false, "print type-check diagnostics to stderr")
	)
	flag.Parse()

	checks, err := lint.CheckByName(*checkNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, c := range checks {
			fmt.Printf("%-26s [%s] %s\n", c.Name(), c.Severity(), c.Doc())
		}
		return
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depfast-vet: %v\n", err)
		os.Exit(2)
	}

	var typeErrs []error
	for _, p := range mod.Packages {
		typeErrs = append(typeErrs, p.TypeErrors...)
	}
	if *verbose {
		for _, e := range typeErrs {
			fmt.Fprintf(os.Stderr, "depfast-vet: typecheck: %v\n", e)
		}
	}

	findings := lint.Run(mod.Packages, checks)
	report := lint.NewReport(mod.Path, mod.Dir, checks, findings, typeErrs)

	if *writeBase != "" {
		b := lint.NewBaseline(report)
		f, err := os.Create(*writeBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "depfast-vet: %v\n", err)
			os.Exit(2)
		}
		if err := b.WriteBaseline(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "depfast-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("depfast-vet: wrote baseline with %d finding(s) to %s\n", len(b.Findings), *writeBase)
		return
	}

	// The build-failing set: unsuppressed errors (and warnings under
	// -werror); with a baseline, only findings the baseline does not
	// cover; with -diff, only findings in files changed since the ref.
	failing := map[int]bool{}
	for i, f := range report.Findings {
		if f.Suppressed {
			continue
		}
		if f.Severity == string(lint.SeverityWarning) && !*werror && *baseline == "" {
			continue
		}
		failing[i] = true
	}
	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "depfast-vet: %v\n", err)
			os.Exit(2)
		}
		newFindings, stale := lint.ApplyBaseline(report, b)
		if stale > 0 && *verbose {
			fmt.Fprintf(os.Stderr, "depfast-vet: %d stale baseline entr(ies); regenerate with -write-baseline\n", stale)
		}
		isNew := map[string]int{}
		for _, f := range newFindings {
			isNew[findingKey(f)]++
		}
		for i, f := range report.Findings {
			if !failing[i] {
				continue
			}
			k := findingKey(f)
			if isNew[k] > 0 {
				isNew[k]--
			} else {
				delete(failing, i)
			}
		}
	}
	if *diffRef != "" {
		changed, err := changedFiles(mod.Dir, *diffRef)
		if err != nil {
			fmt.Fprintf(os.Stderr, "depfast-vet: -diff: %v\n", err)
			os.Exit(2)
		}
		for i, f := range report.Findings {
			if failing[i] && !changed[filepath.ToSlash(f.File)] {
				delete(failing, i)
			}
		}
	}

	switch {
	case *jsonOut:
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *sarifOut:
		if err := report.WriteSARIF(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		report.WriteText(os.Stdout, *suppressed)
		if *baseline != "" || *diffRef != "" {
			fmt.Printf("depfast-vet: %d finding(s) fail after baseline/diff gating\n", len(failing))
		}
	}
	if len(failing) > 0 {
		os.Exit(1)
	}
}

// findingKey matches the baseline's identity for a finding.
func findingKey(f lint.JSONFinding) string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

// changedFiles lists module-relative paths changed since ref,
// according to git.
func changedFiles(dir, ref string) (map[string]bool, error) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--", "*.go")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %w", ref, err)
	}
	changed := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			changed[line] = true
		}
	}
	return changed, nil
}
