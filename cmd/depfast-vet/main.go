// Command depfast-vet statically enforces the DepFast programming
// model over this module: bounded quorum-shaped waits, no scheduler
// blocking inside coroutines, logic behind the framework split. It is
// built entirely on the standard library's go/ast, go/parser,
// go/types, and go/token — no external analysis frameworks.
//
// Usage:
//
//	depfast-vet [flags] [./...]
//
// The module containing the working directory (or -dir) is always
// analyzed as a whole; the ./... argument is accepted for familiarity.
// Exit status is 1 when unsuppressed violations exist, 2 on load
// errors.
//
// Flags:
//
//	-json        machine-readable report (includes suppressed findings)
//	-checks s    comma-separated subset of checks to run
//	-list        list the checks and exit
//	-suppressed  show //depfast:allow'd findings in text output
//	-dir d       directory inside the module to analyze (default ".")
//	-v           print best-effort type-check diagnostics to stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"depfast/internal/lint"
)

func main() {
	var (
		jsonOut    = flag.Bool("json", false, "emit the machine-readable JSON report")
		checkNames = flag.String("checks", "", "comma-separated checks to run (default: all)")
		list       = flag.Bool("list", false, "list available checks and exit")
		suppressed = flag.Bool("suppressed", false, "show allowed findings in text output")
		dir        = flag.String("dir", ".", "directory inside the module to analyze")
		verbose    = flag.Bool("v", false, "print type-check diagnostics to stderr")
	)
	flag.Parse()

	checks, err := lint.CheckByName(*checkNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, c := range checks {
			fmt.Printf("%-26s %s\n", c.Name(), c.Doc())
		}
		return
	}

	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "depfast-vet: %v\n", err)
		os.Exit(2)
	}

	var typeErrs []error
	for _, p := range mod.Packages {
		typeErrs = append(typeErrs, p.TypeErrors...)
	}
	if *verbose {
		for _, e := range typeErrs {
			fmt.Fprintf(os.Stderr, "depfast-vet: typecheck: %v\n", e)
		}
	}

	findings := lint.Run(mod.Packages, checks)
	report := lint.NewReport(mod.Path, mod.Dir, checks, findings, typeErrs)
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		report.WriteText(os.Stdout, *suppressed)
	}
	if report.Unsuppressed > 0 {
		os.Exit(1)
	}
}
