// Command depfast-report analyzes a flight-recorder timeline written
// by depfast-bench -timeline: it renders the time-bucketed timeline
// (throughput, latency percentiles, commit volume, quarantine size,
// notable events per bucket) and the MTTD/MTTR report pairing every
// fault injection with its first detection, its first sustained
// throughput recovery, and the commit-pipeline latency breakdown
// before/during/after the fault.
//
//	depfast-bench -exp mitigation -timeline out.jsonl
//	depfast-report out.jsonl
//	depfast-report -bucket 250ms -events out.jsonl
//	depfast-report - < out.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"depfast/internal/obs"
)

func main() {
	var (
		bucket   = flag.Duration("bucket", time.Second, "timeline bucket width")
		events   = flag.Bool("events", false, "also dump the raw event log (commit spans and gauge samples elided)")
		recovery = flag.Float64("recovery", 0, "recovered when rate >= this fraction of baseline (default 0.5)")
		sustain  = flag.Int("sustain", 0, "consecutive samples required to count as recovered (default 3)")
		baseline = flag.Duration("baseline", 0, "window before injection to average the baseline rate over (default 2s)")
		noTime   = flag.Bool("no-timeline", false, "skip the bucketed timeline, print only the MTTD/MTTR report")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "" && path != "-" {
		f, err := os.Open(path)
		exitOn(err)
		defer f.Close()
		in = f
	}
	evs, dropped, droppedBy, err := obs.ReadJSONL(in)
	exitOn(err)
	if len(evs) == 0 {
		fmt.Println("depfast-report: no events in input")
		return
	}

	if !*noTime {
		tl := obs.BuildTimeline(evs, *bucket)
		fmt.Println(tl.Render())
	}
	if *events {
		fmt.Println(obs.RenderEvents(evs, obs.CommitSpan, obs.GaugeSample))
	}

	if tbl := obs.SummarizeHedges(evs).Render(); tbl != "" {
		fmt.Println(tbl)
	}

	rep := obs.Analyze(evs, obs.ReportConfig{
		RecoveryFraction: *recovery,
		SustainSamples:   *sustain,
		BaselineWindow:   *baseline,
	})
	rep.Dropped += dropped
	fmt.Println(rep.Render())
	if len(droppedBy) > 0 {
		fmt.Println("dropped events by shard (drop-oldest at the recorder limit):")
		shards := make([]string, 0, len(droppedBy))
		for sh := range droppedBy {
			shards = append(shards, sh)
		}
		sort.Strings(shards)
		for _, sh := range shards {
			fmt.Printf("  %-12s %d\n", sh, droppedBy[sh])
		}
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "depfast-report:", err)
		os.Exit(1)
	}
}
