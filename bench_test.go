// Macro-benchmarks regenerating every table and figure of the paper,
// plus ablations over the design choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem            # everything (several minutes)
//	go test -bench=BenchmarkFigure3 -v    # one figure with its table
//
// Each benchmark runs the experiment once per b.N iteration (cells are
// seconds-long, so b.N stays 1 at the default benchtime) and reports
// the figure's headline numbers via b.ReportMetric; the full panel
// table is emitted with b.Logf (visible with -v).
package depfast_test

import (
	"fmt"
	"testing"
	"time"

	"depfast/internal/baseline"
	"depfast/internal/core"
	"depfast/internal/env"
	"depfast/internal/failslow"
	"depfast/internal/harness"
	"depfast/internal/raft"
	"depfast/internal/rpc"
	"depfast/internal/transport"
)

// benchExperimentConfig returns cells short enough for benchmarking.
func benchExperimentConfig() harness.ExperimentConfig {
	ecfg := harness.DefaultExperimentConfig()
	ecfg.Duration = 1200 * time.Millisecond
	ecfg.Warmup = 400 * time.Millisecond
	ecfg.Clients = 24
	return ecfg
}

// BenchmarkTable1FaultCatalog regenerates Table 1: the fault catalog
// with the measured per-resource stretch factors.
func BenchmarkTable1FaultCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table1(failslow.DefaultIntensity())
		if i == 0 {
			b.Logf("\n%s", harness.RenderTable1(rows))
			for _, r := range rows {
				switch r.Fault {
				case failslow.CPUSlow:
					b.ReportMetric(r.ComputeFactor, "cpu-slow-x")
				case failslow.DiskSlow:
					b.ReportMetric(r.DiskFactor, "disk-slow-x")
				case failslow.NetSlow:
					b.ReportMetric(r.NetFactor, "net-slow-x")
				}
			}
		}
	}
}

// figure1For benches one baseline system across all faults
// (one column of Figure 1).
func figure1For(b *testing.B, sys harness.System) {
	for i := 0; i < b.N; i++ {
		var base harness.RunResult
		var worstTput = 1.0
		var worstP99 = 1.0
		ecfg := benchExperimentConfig()
		var lines string
		for _, fault := range failslow.All {
			cfg := harness.DefaultRunConfig(sys)
			cfg.Duration = ecfg.Duration
			cfg.Warmup = ecfg.Warmup
			cfg.Clients = ecfg.Clients
			cfg.Fault = fault
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if fault == failslow.None {
				base = res
			}
			nt := res.Throughput / base.Throughput
			np := float64(res.P99) / float64(base.P99)
			if nt < worstTput {
				worstTput = nt
			}
			if np > worstP99 {
				worstP99 = np
			}
			lines += fmt.Sprintf("  %s  [norm tput %.2f p99 %.2f]\n", res, nt, np)
		}
		if i == 0 {
			b.Logf("\nFigure 1 column — %v:\n%s", sys, lines)
			b.ReportMetric(base.Throughput, "base-op/s")
			b.ReportMetric(worstTput, "worst-norm-tput")
			b.ReportMetric(worstP99, "worst-norm-p99")
		}
	}
}

// BenchmarkFigure1SyncRSM..CallbackRSM regenerate the three groups of
// Figure 1 (baseline RSMs with one fail-slow follower, normalized).
func BenchmarkFigure1SyncRSM(b *testing.B)     { figure1For(b, harness.SyncRSM) }
func BenchmarkFigure1BufferRSM(b *testing.B)   { figure1For(b, harness.BufferRSM) }
func BenchmarkFigure1CallbackRSM(b *testing.B) { figure1For(b, harness.CallbackRSM) }

// figure3For benches DepFastRaft at one group size with a minority of
// fail-slow followers (one group of Figure 3).
func figure3For(b *testing.B, nodes int) {
	for i := 0; i < b.N; i++ {
		var base harness.RunResult
		maxDrift := 0.0
		ecfg := benchExperimentConfig()
		var lines string
		for _, fault := range failslow.All {
			cfg := harness.DefaultRunConfig(harness.DepFastRaft)
			cfg.Nodes = nodes
			cfg.FaultFollowers = (nodes - 1) / 2
			cfg.Duration = ecfg.Duration
			cfg.Warmup = ecfg.Warmup
			cfg.Clients = ecfg.Clients
			cfg.Fault = fault
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if fault == failslow.None {
				base = res
			}
			for _, pair := range [][2]float64{
				{res.Throughput, base.Throughput},
				{float64(res.Mean), float64(base.Mean)},
			} {
				d := pair[0]/pair[1] - 1
				if d < 0 {
					d = -d
				}
				if d > maxDrift {
					maxDrift = d
				}
			}
			lines += fmt.Sprintf("  %s\n", res)
		}
		if i == 0 {
			b.Logf("\nFigure 3 group — %d nodes:\n%s", nodes, lines)
			b.ReportMetric(base.Throughput, "base-op/s")
			b.ReportMetric(maxDrift*100, "max-drift-%")
		}
	}
}

// BenchmarkFigure3ThreeNodes / FiveNodes regenerate Figure 3
// (DepFastRaft with a minority of fail-slow followers, absolute).
func BenchmarkFigure3ThreeNodes(b *testing.B) { figure3For(b, 3) }
func BenchmarkFigure3FiveNodes(b *testing.B)  { figure3For(b, 5) }

// BenchmarkFigure2SPG regenerates the slowness propagation graph of
// Figure 2 and reports its shape.
func BenchmarkFigure2SPG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, col, err := harness.Figure2(30*time.Second, 25)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", g.ASCII())
			b.ReportMetric(float64(len(g.QuorumEdges())), "green-edges")
			b.ReportMetric(float64(len(g.SingularEdges())), "red-edges")
			b.ReportMetric(float64(col.Len()), "wait-records")
		}
	}
}

// BenchmarkBaseThroughput compares no-fault throughput head to head —
// the paper's §3.4 note that DepFastRaft's low drift is not explained
// by a smaller base performance.
func BenchmarkBaseThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []harness.System{
			harness.DepFastRaft, harness.SyncRSM, harness.BufferRSM, harness.CallbackRSM,
		} {
			cfg := harness.DefaultRunConfig(sys)
			cfg.Duration = 1200 * time.Millisecond
			cfg.Warmup = 400 * time.Millisecond
			cfg.Clients = 24
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("%s", res)
				b.ReportMetric(res.Throughput, sys.String()+"-op/s")
			}
		}
	}
}

// BenchmarkAblationDiscard isolates the quorum-aware broadcast discard
// (the paper's "logic versus framework" optimization): DepFastRaft
// with and without it, under a network-slow follower.
func BenchmarkAblationDiscard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, discard := range []bool{true, false} {
			discard := discard
			cfg := harness.DefaultRunConfig(harness.DepFastRaft)
			cfg.Duration = 1200 * time.Millisecond
			cfg.Warmup = 400 * time.Millisecond
			cfg.Clients = 24
			cfg.Fault = failslow.NetSlow
			cfg.RaftMutate = func(rc *raft.Config) { rc.QuorumDiscard = discard }
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("discard=%v: %s", discard, res)
				name := "discard-on-op/s"
				if !discard {
					name = "discard-off-op/s"
				}
				b.ReportMetric(res.Throughput, name)
			}
		}
	}
}

// BenchmarkAblationEntryCache sweeps the SyncRSM entry-cache size
// under a network-slow follower: the smaller the cache, the more
// synchronous WAL reads block the region thread (the TiDB root cause).
func BenchmarkAblationEntryCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{8, 32, 512} {
			size := size
			cfg := harness.DefaultRunConfig(harness.SyncRSM)
			cfg.Duration = 1200 * time.Millisecond
			cfg.Warmup = 400 * time.Millisecond
			cfg.Clients = 24
			cfg.Fault = failslow.NetSlow
			cfg.BaselineMutate = func(bc *baseline.Config) { bc.EntryCacheSize = size }
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("cache=%d: %s", size, res)
				b.ReportMetric(res.Throughput, fmt.Sprintf("cache%d-op/s", size))
			}
		}
	}
}

// BenchmarkAblationReadIndex compares the replicated-read path against
// the ReadIndex leadership-check path on a read-heavy workload.
func BenchmarkAblationReadIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, readIndex := range []bool{false, true} {
			readIndex := readIndex
			cfg := harness.DefaultRunConfig(harness.DepFastRaft)
			cfg.Duration = 1200 * time.Millisecond
			cfg.Warmup = 400 * time.Millisecond
			cfg.Clients = 24
			cfg.RaftMutate = func(rc *raft.Config) { rc.ReadIndex = readIndex }
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("readindex=%v: %s", readIndex, res)
			}
		}
	}
}

// BenchmarkSlowLeaderMitigation exercises the paper's §5 future-work
// mitigation: with the detector on, followers notice a fail-slow
// leader's stretched heartbeat cadence and demote it by re-electing.
func BenchmarkSlowLeaderMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		names := []string{"s1", "s2", "s3"}
		net := transport.NewNetwork()
		envs := map[string]*env.Env{}
		servers := map[string]*raft.Server{}
		for j, n := range names {
			cfg := raft.DefaultConfig(n, names)
			cfg.Seed = int64(j+1) * 17
			cfg.SlowLeaderDetector = true
			cfg.SlowLeaderThreshold = 4
			e := env.New(n, env.DefaultConfig())
			s := raft.NewServer(cfg, e, net)
			net.Register(n, e, s.TransportHandler())
			envs[n] = e
			servers[n] = s
		}
		for _, s := range servers {
			s.Start()
		}
		leader := awaitLeader(b, servers)
		in := failslow.DefaultIntensity()
		in.NetDelay = 150 * time.Millisecond
		failslow.Apply(envs[leader], failslow.NetSlow, in)
		start := time.Now()
		recovered := time.Duration(0)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			for n, s := range servers {
				if n == leader {
					continue
				}
				if _, role, _ := s.Status(); role == raft.Leader {
					recovered = time.Since(start)
				}
			}
			if recovered > 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if i == 0 {
			if recovered > 0 {
				b.Logf("slow leader demoted after %v", recovered.Round(time.Millisecond))
				b.ReportMetric(recovered.Seconds()*1000, "demotion-ms")
			} else {
				b.Log("slow leader never demoted (detector failed)")
			}
		}
		for _, s := range servers {
			s.Stop()
		}
		net.Close()
	}
}

func awaitLeader(b *testing.B, servers map[string]*raft.Server) string {
	b.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for n, s := range servers {
			if _, role, _ := s.Status(); role == raft.Leader {
				return n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatal("no leader")
	return ""
}

// BenchmarkAblationBatching contrasts per-request replication (the
// paper's DepFastRaft pattern) against batched commits at a high
// client count — the throughput/latency trade the batching option
// buys.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, batching := range []bool{false, true} {
			batching := batching
			cfg := harness.DefaultRunConfig(harness.DepFastRaft)
			cfg.Duration = 1500 * time.Millisecond
			cfg.Warmup = 500 * time.Millisecond
			cfg.Clients = 64
			cfg.RaftMutate = func(rc *raft.Config) { rc.BatchProposals = batching }
			res, err := harness.RunStable(cfg, 3)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("batching=%v: %s", batching, res)
				name := "per-request-op/s"
				if batching {
					name = "batched-op/s"
				}
				b.ReportMetric(res.Throughput, name)
			}
		}
	}
}

// BenchmarkTransientFault runs the timeline experiment: a network
// fault lands on one follower mid-run and clears; DepFastRaft's
// windows stay flat while a baseline's sag (§5 transient faults).
func BenchmarkTransientFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []harness.System{harness.DepFastRaft, harness.CallbackRSM} {
			cfg := harness.DefaultRunConfig(sys)
			cfg.Clients = 24
			cfg.Fault = failslow.NetSlow
			res, err := harness.RunTransient(cfg, 3*time.Second, 500*time.Millisecond,
				time.Second, time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				before, during, _ := res.PhaseThroughputs()
				b.Logf("\n%s", res.Render())
				b.ReportMetric(during/before, sys.String()+"-during/before")
			}
		}
	}
}

// BenchmarkClientSweep sweeps the closed-loop client population — the
// scaled version of the paper's 256–1200 YCSB clients.
func BenchmarkClientSweep(b *testing.B) {
	counts := []int{8, 24, 48}
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultRunConfig(harness.DepFastRaft)
		cfg.Duration = time.Second
		cfg.Warmup = 300 * time.Millisecond
		results, err := harness.Sweep(cfg, counts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", harness.RenderSweep(results, counts))
			b.ReportMetric(results[len(results)-1].Throughput, "peak-op/s")
		}
	}
}

// BenchmarkIntensitySweep measures the degradation *curve* over fault
// magnitude: DepFastRaft stays flat while CallbackRSM bends.
func BenchmarkIntensitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ecfg := benchExperimentConfig()
		delays := []time.Duration{20 * time.Millisecond, 80 * time.Millisecond}
		res, err := harness.IntensitySweep(ecfg,
			[]harness.System{harness.DepFastRaft, harness.CallbackRSM}, delays)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Render())
			last := len(delays) - 1
			b.ReportMetric(res.Points[harness.DepFastRaft][last].NormTput, "depfast-80ms-x")
			b.ReportMetric(res.Points[harness.CallbackRSM][last].NormTput, "callback-80ms-x")
		}
	}
}

// BenchmarkCoroutineOverhead measures the cost of the DepFast
// programming model itself: one event signal + coroutine wakeup per
// iteration, compared against a raw channel ping-pong baseline.
func BenchmarkCoroutineOverhead(b *testing.B) {
	b.Run("event-wakeup", func(b *testing.B) {
		rt := core.NewRuntime("bench")
		defer rt.Stop()
		done := make(chan struct{})
		rt.Spawn("waiter", func(co *core.Coroutine) {
			defer close(done)
			for i := 0; i < b.N; i++ {
				sig := core.NewSignalEvent()
				co.Runtime().Spawn("setter", func(sc *core.Coroutine) { sig.Set() })
				if err := co.Wait(sig); err != nil {
					return
				}
			}
		})
		<-done
	})
	b.Run("raw-channel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch := make(chan struct{})
			go func() { close(ch) }()
			<-ch
		}
	})
}

// BenchmarkQuorumEventThroughput measures pure quorum-event machinery:
// building a 2-of-3 quorum and firing it.
func BenchmarkQuorumEventThroughput(b *testing.B) {
	rt := core.NewRuntime("bench")
	defer rt.Stop()
	done := make(chan struct{})
	rt.Spawn("driver", func(co *core.Coroutine) {
		defer close(done)
		for i := 0; i < b.N; i++ {
			q := core.NewQuorumEvent(3, 2)
			evs := [3]*core.ResultEvent{}
			for j := range evs {
				evs[j] = core.NewResultEvent("rpc", "p")
				q.AddJudged(evs[j], nil)
			}
			evs[0].Fire("ok", nil)
			evs[1].Fire("ok", nil)
			if !q.Ready() {
				b.Error("quorum not ready")
				return
			}
		}
	})
	<-done
}

// BenchmarkEndToEndPut measures single-client put latency through a
// full in-memory 3-node cluster (closed loop, b.N puts).
func BenchmarkEndToEndPut(b *testing.B) {
	names := []string{"s1", "s2", "s3"}
	net := transport.NewNetwork()
	defer net.Close()
	servers := map[string]*raft.Server{}
	for j, n := range names {
		cfg := raft.DefaultConfig(n, names)
		cfg.Seed = int64(j+1) * 29
		e := env.New(n, env.DefaultConfig())
		s := raft.NewServer(cfg, e, net)
		net.Register(n, e, s.TransportHandler())
		servers[n] = s
	}
	for _, s := range servers {
		s.Start()
	}
	defer func() {
		for _, s := range servers {
			s.Stop()
		}
	}()
	awaitLeader(b, servers)

	crt := core.NewRuntime("client-bench")
	defer crt.Stop()
	cep := rpc.NewEndpoint("client-bench", crt, net, rpc.WithCallTimeout(3*time.Second))
	defer cep.Close()
	net.Register("client-bench", env.New("client-bench", env.DefaultConfig()), cep.TransportHandler())

	b.ResetTimer()
	done := make(chan error, 1)
	crt.Spawn("bench", func(co *core.Coroutine) {
		cl := raft.NewClient(1, cep, names, 3*time.Second)
		for i := 0; i < b.N; i++ {
			if err := cl.Put(co, fmt.Sprintf("bench%d", i), []byte("v")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	})
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
